(* Shared helper: locate the spec directory whether the example runs from
   the project root or from _build. *)

let rec find_up ?(depth = 6) dir rel =
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some candidate
  else if depth = 0 then None
  else find_up ~depth:(depth - 1) (Filename.dirname dir) rel

let spec_path name =
  match find_up (Sys.getcwd ()) (Filename.concat "specs" name) with
  | Some p -> p
  | None ->
      Fmt.epr "cannot locate specs/%s from %s@." name (Sys.getcwd ());
      exit 1

let amdahl_tables () =
  match Cogg.Cogg_build.build_file (spec_path "amdahl470.cgg") with
  | Ok t -> t
  | Error es ->
      Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
      exit 1

let amdahl_spec () =
  match Cogg.Spec_parse.of_file (spec_path "amdahl470.cgg") with
  | Ok s -> s
  | Error e ->
      Fmt.epr "%a@." Cogg.Spec_parse.pp_error e;
      exit 1
