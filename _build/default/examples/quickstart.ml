(* Quickstart: the paper's section-1 example, end to end.

   A code generator specification is written as a simple SDTS; CoGG turns
   it into driving tables; the generated code generator parses a
   linearized IF program and emits 370 code, which runs on the simulator.

     dune exec examples/quickstart.exe *)

let spec =
  {|
* The artificial machine of the paper's first section.
$Non-terminals
 r = gpr
$Terminals
 d = displacement
$Operators
 word, iadd, store, ret
$Opcodes
 l, ar, st, bcr
$Constants
 using, need, modifies
 fifteen = 15
$Productions
r.2 ::= word d.1
 using r.2
 l     r.2,d.1
r.1 ::= iadd r.1 r.2
 modifies r.1
 ar    r.1,r.2
lambda ::= store word d.1 r.2
 st    r.2,d.1
lambda ::= ret
 need r.14
 bcr   fifteen,r.14
|}

(* A := A + B, with A at address 100 and B at 104: the paper's
   store(word d.a, iadd(word d.a, word d.b)) *)
let program = "store word d:100 iadd word d:100 word d:104 ret"

let () =
  Fmt.pr "=== 1. build the code generator from its specification ===@.";
  let tables =
    match Cogg.Cogg_build.build_string spec with
    | Ok t -> t
    | Error es ->
        Fmt.epr "%a@." (Fmt.list Cogg.Cogg_build.pp_error) es;
        exit 1
  in
  Fmt.pr "built: %d productions, %d parser states@.@."
    tables.Cogg.Tables.n_user_prods
    (Cogg.Parse_table.n_states tables.Cogg.Tables.parse);

  Fmt.pr "=== 2. generate code for  A := A + B  ===@.";
  let r =
    match Cogg.Codegen.generate_string tables program with
    | Ok r -> r
    | Error m ->
        Fmt.epr "%s@." m;
        exit 1
  in
  Fmt.pr "%s@.@." r.Cogg.Codegen.listing;

  Fmt.pr "=== 3. the object module (loader records) ===@.";
  Fmt.pr "%s@.@." (Machine.Objmod.to_string r.Cogg.Codegen.objmod);

  Fmt.pr "=== 4. load and execute on the simulated 370 ===@.";
  let sim = Machine.Sim.create () in
  (match Machine.Objmod.load sim.Machine.Sim.mem ~at:0x10000 r.Cogg.Codegen.objmod with
  | Error m ->
      Fmt.epr "%s@." m;
      exit 1
  | Ok entry ->
      Machine.Sim.store_w sim 100 7;
      Machine.Sim.store_w sim 104 35;
      Machine.Sim.set_reg sim 14 0;
      ignore (Machine.Sim.run sim ~entry);
      Fmt.pr "A was 7, B was 35; after execution A = %d@."
        (Machine.Sim.load_w sim 100))
