(* The production-compiler pipeline of the paper: mini-Pascal front end,
   shaping routine with CSE optimization, the CoGG-generated table-driven
   code generator, the loader record generator, and execution on the
   simulated Amdahl 470 — checked against a reference interpreter.

     dune exec examples/pascal_pipeline.exe *)

let show name src =
  let tables = Util_ex.amdahl_tables () in
  Fmt.pr "================ %s ================@." name;
  match Pipeline.compile tables src with
  | Error m ->
      Fmt.epr "%s@." m;
      exit 1
  | Ok c -> (
      Fmt.pr "--- intermediate form (first statements) ---@.";
      List.iteri
        (fun i t -> if i < 6 then Fmt.pr "  %a@." Ifl.Tree.pp t)
        c.Pipeline.shaped.Shaper.Irgen.trees;
      Fmt.pr "--- generated 370 code ---@.%s@." c.Pipeline.gen.Cogg.Codegen.listing;
      match Pipeline.verify tables src with
      | Error m ->
          Fmt.epr "%s@." m;
          exit 1
      | Ok v ->
          Fmt.pr "--- executed on the simulator ---@.";
          Fmt.pr "write output: %a@."
            Fmt.(list ~sep:sp int)
            v.Pipeline.executed.Pipeline.written_ints;
          List.iter (Fmt.pr "real output: %g@.")
            v.Pipeline.executed.Pipeline.written_reals;
          Fmt.pr "agrees with the reference interpreter: %b@.@."
            v.Pipeline.agreed)

let () =
  show "gcd(3528, 3780)" Pipeline.Programs.gcd;
  show "sieve of Eratosthenes" Pipeline.Programs.sieve;
  show "Appendix 1 equation" Pipeline.Programs.appendix1_equation
