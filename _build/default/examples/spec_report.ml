(* A report on the Amdahl 470 code generator specification: the paper's
   Table 1/Table 2 measurements and a sample of the resolved parsing
   conflicts (maximal-munch shift preference and longest-rule
   reduce/reduce resolution).

     dune exec examples/spec_report.exe *)

let () =
  let spec = Util_ex.amdahl_spec () in
  let tables = Util_ex.amdahl_tables () in
  Fmt.pr "%a@." Cogg.Stats.pp_table1 (Cogg.Stats.table1 spec tables);

  let sizes = Cogg.Tables_io.sizes tables in
  Fmt.pr "Table 2 (artifact sizes)%26s %10s@." "bytes" "pages";
  let row label bytes =
    Fmt.pr "%-40s %10d %10.1f@." label bytes (Cogg.Tables_io.pages bytes)
  in
  row "i.   Template array" sizes.Cogg.Tables_io.template_array;
  row "ii.  Compressed parse table" sizes.Cogg.Tables_io.compressed_table;
  row "iii. Uncompressed parse table" sizes.Cogg.Tables_io.uncompressed_table;
  Fmt.pr "@.";

  let conflicts = Cogg.Tables.conflicts tables in
  let sr, rr =
    List.partition (fun c -> c.Cogg.Parse_table.c_kind = `Shift_reduce) conflicts
  in
  Fmt.pr "Conflicts resolved by the Graham-Glanville policy:@.";
  Fmt.pr "  shift/reduce (shift wins, maximal munch): %d@." (List.length sr);
  Fmt.pr "  reduce/reduce (longest production wins):  %d@.@." (List.length rr);
  let g = tables.Cogg.Tables.grammar in
  Fmt.pr "A few examples:@.";
  List.iteri
    (fun i c -> if i < 3 then Fmt.pr "  %a@." (Cogg.Parse_table.pp_conflict g) c)
    sr;
  List.iteri
    (fun i c -> if i < 3 then Fmt.pr "  %a@." (Cogg.Parse_table.pp_conflict g) c)
    rr
