examples/spec_report.ml: Cogg Fmt List Util_ex
