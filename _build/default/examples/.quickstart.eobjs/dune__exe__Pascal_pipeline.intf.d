examples/pascal_pipeline.mli:
