examples/quickstart.ml: Cogg Fmt Machine
