examples/spec_report.mli:
