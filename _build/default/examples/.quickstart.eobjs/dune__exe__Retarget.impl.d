examples/retarget.ml: Cogg Fmt List Pipeline Util_ex
