examples/quickstart.mli:
