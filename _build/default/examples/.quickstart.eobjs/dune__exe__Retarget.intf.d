examples/retarget.mli:
