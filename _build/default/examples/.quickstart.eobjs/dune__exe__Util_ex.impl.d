examples/util_ex.ml: Cogg Filename Fmt Sys
