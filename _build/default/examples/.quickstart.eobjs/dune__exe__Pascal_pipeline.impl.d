examples/pascal_pipeline.ml: Cogg Fmt Ifl List Pipeline Shaper Util_ex
