(** Attribute values carried by IF tokens and translation-stack entries.

    Terminals of the intermediate form carry semantic values set by the
    shaping routine (displacements, lengths, counts, label numbers, CSE
    numbers, condition masks).  After a reduction the code generator
    pushes non-terminal tokens whose value is the register binding
    produced by the register allocator. *)

type t =
  | Unit  (** operators and value-free symbols *)
  | Int of int  (** displacement / length / count / shift / literal *)
  | Reg of int  (** a register number bound to a non-terminal *)
  | Label of int  (** label identifier, resolved by the loader generator *)
  | Cse of int  (** common-subexpression identifier *)
  | Cond of int  (** condition-code branch mask (IBM 370 BC mask) *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_int : t -> int
(** [to_int v] extracts the numeric payload of any valued attribute.
    Raises [Invalid_argument] on [Unit]. *)

val pp : Format.formatter -> t -> unit
(** Prints the textual-syntax payload suffix ([:5], [:r13], [:L2], ...);
    prints nothing for [Unit]. *)

val to_string : t -> string
