(** Attribute values carried by IF tokens and translation-stack entries.

    Terminals of the intermediate form carry semantic values set by the
    shaping routine (displacements, lengths, counts, label numbers, CSE
    numbers, condition masks).  After a reduction the code generator pushes
    non-terminal tokens whose value is the register binding produced by the
    register allocator. *)

type t =
  | Unit            (** operators and value-free symbols *)
  | Int of int      (** displacement / length / count / shift / literal *)
  | Reg of int      (** a register number bound to a non-terminal *)
  | Label of int    (** label identifier, resolved by the loader generator *)
  | Cse of int      (** common-subexpression identifier *)
  | Cond of int     (** condition-code branch mask (IBM 370 BC mask) *)

let equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Int a, Int b -> a = b
  | Reg a, Reg b -> a = b
  | Label a, Label b -> a = b
  | Cse a, Cse b -> a = b
  | Cond a, Cond b -> a = b
  | (Unit | Int _ | Reg _ | Label _ | Cse _ | Cond _), _ -> false

let compare = Stdlib.compare

(** [to_int v] extracts the numeric payload of any valued attribute.
    Raises [Invalid_argument] on [Unit]. *)
let to_int = function
  | Int n | Reg n | Label n | Cse n | Cond n -> n
  | Unit -> invalid_arg "Ifl.Value.to_int: Unit has no payload"

let pp ppf = function
  | Unit -> ()
  | Int n -> Fmt.pf ppf ":%d" n
  | Reg n -> Fmt.pf ppf ":r%d" n
  | Label n -> Fmt.pf ppf ":L%d" n
  | Cse n -> Fmt.pf ppf ":c%d" n
  | Cond n -> Fmt.pf ppf ":m%d" n

let to_string v = Fmt.str "%a" pp v
