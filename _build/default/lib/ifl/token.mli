(** A token of the linearized intermediate form.

    The IF emitted by the shaper is a string of prefix (Polish)
    expressions over the symbols declared in the code-generator
    specification: operators ([iadd], [fullword], [assign], ...), valued
    terminals ([dsp], [lng], [lbl], ...) and pre-bound non-terminals
    (dedicated registers such as the stack base, which appear in the
    input stream as [r] tokens carrying a register attribute). *)

type t = { sym : string; value : Value.t }

val make : ?value:Value.t -> string -> t

(** Constructors for each attribute kind. *)

val op : string -> t
val int : string -> int -> t
val reg : string -> int -> t
val label : string -> int -> t
val cse : string -> int -> t
val cond : string -> int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse a single token of the textual IF syntax: [sym], [sym:N],
    [sym:rN], [sym:LN], [sym:cN], [sym:mN]. *)
