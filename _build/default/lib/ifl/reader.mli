(** Textual syntax for the intermediate form.

    Two forms are accepted:
    - linear: whitespace-separated tokens, e.g.
      ["assign fullword dsp:100 r:13 r:1"];
    - tree (s-expression):
      [(iadd (fullword dsp:4 r:13) (fullword dsp:8 r:13))].

    Lines starting with [*] are comments, matching the specification
    language's convention. *)

val tokens_of_string : string -> (Token.t list, string) result
(** Parse the linear token syntax. *)

val trees_of_string : string -> (Tree.t list, string) result
(** Parse one or more trees in the s-expression syntax. *)

val program_of_string : string -> (Token.t list, string) result
(** Parse a program in either syntax (trees when the text contains a
    parenthesis) and return its linearized token stream. *)
