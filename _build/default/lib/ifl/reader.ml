(** Textual syntax for the intermediate form.

    Two forms are accepted:
    - linear: whitespace-separated tokens, e.g.
      ["assign fullword dsp:100 r:13 r:1"]
    - tree (s-expression): [(iadd (fullword dsp:4 r:13) (fullword dsp:8 r:13))]

    Lines starting with [*] are comments, matching the specification
    language's comment convention. *)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let strip_comments s =
  String.split_on_char '\n' s
  |> List.filter (fun line ->
         let line = String.trim line in
         String.length line = 0 || line.[0] <> '*')
  |> String.concat "\n"

(** Parse a linear token stream. *)
let tokens_of_string s : (Token.t list, string) result =
  let s = strip_comments s in
  let words =
    String.split_on_char '\n' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun w -> w <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | w :: ws ->
        if String.contains w '(' || String.contains w ')' then
          Error (Fmt.str "unexpected parenthesis in token %S" w)
        else (
          match Token.of_string w with
          | Ok t -> go (t :: acc) ws
          | Error e -> Error e)
  in
  go [] words

type sexp_token = Lparen | Rparen | Atom of string

let lex_sexp s =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Atom (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    match s.[i] with
    | '(' ->
        flush ();
        out := Lparen :: !out
    | ')' ->
        flush ();
        out := Rparen :: !out
    | c when is_space c -> flush ()
    | c -> Buffer.add_char buf c
  done;
  flush ();
  List.rev !out

(** Parse one or more trees from the s-expression syntax.  A bare atom is a
    leaf; [(op child...)] is an interior node. *)
let trees_of_string s : (Tree.t list, string) result =
  let s = strip_comments s in
  let toks = lex_sexp s in
  let ( let* ) = Result.bind in
  (* parse one tree from the stream *)
  let rec tree = function
    | Atom a :: rest ->
        let* t = Token.of_string a in
        Ok (Tree.Node (t, []), rest)
    | Lparen :: Atom a :: rest ->
        let* t = Token.of_string a in
        let* cs, rest = tree_list [] rest in
        Ok (Tree.Node (t, cs), rest)
    | Lparen :: _ -> Error "expected operator after '('"
    | Rparen :: _ -> Error "unexpected ')'"
    | [] -> Error "unexpected end of input"
  and tree_list acc = function
    | Rparen :: rest -> Ok (List.rev acc, rest)
    | [] -> Error "missing ')'"
    | rest ->
        let* t, rest = tree rest in
        tree_list (t :: acc) rest
  in
  let rec many acc = function
    | [] -> Ok (List.rev acc)
    | rest ->
        let* t, rest = tree rest in
        many (t :: acc) rest
  in
  many [] toks

(** Parse a program in either syntax and return its linearized token
    stream.  Uses the tree syntax when the text contains a parenthesis. *)
let program_of_string s : (Token.t list, string) result =
  if String.contains s '(' then
    Result.map Tree.linearize_program (trees_of_string s)
  else tokens_of_string s
