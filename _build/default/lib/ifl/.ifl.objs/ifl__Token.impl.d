lib/ifl/token.ml: Fmt String Value
