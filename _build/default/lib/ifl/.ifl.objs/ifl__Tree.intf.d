lib/ifl/tree.mli: Format Token Value
