lib/ifl/token.mli: Format Value
