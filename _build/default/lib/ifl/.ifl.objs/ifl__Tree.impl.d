lib/ifl/tree.ml: Fmt List Token
