lib/ifl/reader.ml: Buffer Fmt List Result String Token Tree
