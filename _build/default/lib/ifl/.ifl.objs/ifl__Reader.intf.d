lib/ifl/reader.mli: Token Tree
