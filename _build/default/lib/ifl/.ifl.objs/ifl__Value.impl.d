lib/ifl/value.ml: Fmt Stdlib
