lib/ifl/value.mli: Format
