(** Tree view of the intermediate form.

    The input to the code generator "is actually a linearized tree
    structure" (paper, section 6).  The front end builds trees; the
    shaper rewrites them; {!linearize} produces the prefix token stream
    the table-driven code generator parses. *)

type t = Node of Token.t * t list

val node : ?value:Value.t -> string -> t list -> t
val leaf : ?value:Value.t -> string -> t
val token : t -> Token.t
val children : t -> t list

val size : t -> int
(** Number of nodes, which equals the length of the linearization. *)

val linearize : t -> Token.t list
(** Prefix (Polish) linearization of one tree. *)

val linearize_program : t list -> Token.t list
(** Linearize a program: a sequence of statement trees becomes one token
    stream, statement by statement. *)

val pp : Format.formatter -> t -> unit
(** S-expression rendering, parseable by {!Reader.trees_of_string}. *)

val to_string : t -> string
val equal : t -> t -> bool
