(** A token of the linearized intermediate form.

    The IF emitted by the shaper is a string of prefix (Polish) expressions
    over the symbols declared in the code-generator specification: operators
    ([iadd], [fullword], [assign], ...), valued terminals ([dsp], [lng],
    [lbl], ...) and pre-bound non-terminals (dedicated registers such as the
    stack base, which appear in the input stream as [r] tokens carrying a
    register attribute). *)

type t = { sym : string; value : Value.t }

let make ?(value = Value.Unit) sym = { sym; value }
let op sym = { sym; value = Value.Unit }
let int sym n = { sym; value = Value.Int n }
let reg sym n = { sym; value = Value.Reg n }
let label sym n = { sym; value = Value.Label n }
let cse sym n = { sym; value = Value.Cse n }
let cond sym n = { sym; value = Value.Cond n }

let equal a b = String.equal a.sym b.sym && Value.equal a.value b.value

let pp ppf t = Fmt.pf ppf "%s%a" t.sym Value.pp t.value
let to_string t = Fmt.str "%a" pp t

(** Parse a single token of the textual IF syntax: [sym], [sym:N],
    [sym:rN], [sym:LN], [sym:cN], [sym:mN]. *)
let of_string s =
  match String.index_opt s ':' with
  | None -> Ok (op s)
  | Some i ->
      let sym = String.sub s 0 i in
      let payload = String.sub s (i + 1) (String.length s - i - 1) in
      if sym = "" || payload = "" then
        Error (Fmt.str "malformed IF token %S" s)
      else
        let tagged tag rest_of =
          match int_of_string_opt rest_of with
          | Some n -> Ok { sym; value = tag n }
          | None -> Error (Fmt.str "malformed IF token payload %S" s)
        in
        let body = String.sub payload 1 (String.length payload - 1) in
        (match payload.[0] with
        | 'r' -> tagged (fun n -> Value.Reg n) body
        | 'L' -> tagged (fun n -> Value.Label n) body
        | 'c' -> tagged (fun n -> Value.Cse n) body
        | 'm' -> tagged (fun n -> Value.Cond n) body
        | '0' .. '9' | '-' -> tagged (fun n -> Value.Int n) payload
        | _ -> Error (Fmt.str "malformed IF token payload %S" s))
