(** Tree view of the intermediate form.

    The input to the code generator "is actually a linearized tree
    structure" (paper, section 6).  The front end builds trees; the shaper
    rewrites them; [linearize] produces the prefix token stream the
    table-driven code generator parses. *)

type t = Node of Token.t * t list

let node ?value sym children = Node (Token.make ?value sym, children)
let leaf ?value sym = Node (Token.make ?value sym, [])
let token (Node (t, _)) = t
let children (Node (_, cs)) = cs

let rec size (Node (_, cs)) = 1 + List.fold_left (fun a c -> a + size c) 0 cs

let rec linearize_into acc (Node (t, cs)) =
  let acc = t :: acc in
  List.fold_left linearize_into acc cs

(** Prefix (Polish) linearization of one tree. *)
let linearize t = List.rev (linearize_into [] t)

(** Linearize a program: a sequence of statement trees becomes one token
    stream, statement by statement. *)
let linearize_program ts =
  List.rev (List.fold_left linearize_into [] ts)

let rec pp ppf (Node (t, cs)) =
  match cs with
  | [] -> Token.pp ppf t
  | _ -> Fmt.pf ppf "(@[%a@ %a@])" Token.pp t (Fmt.list ~sep:Fmt.sp pp) cs

let to_string t = Fmt.str "%a" pp t

let rec equal (Node (t1, c1)) (Node (t2, c2)) =
  Token.equal t1 t2
  && List.length c1 = List.length c2
  && List.for_all2 equal c1 c2
