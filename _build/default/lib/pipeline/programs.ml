(** The paper's evaluation programs (Appendix 1) and other standard
    workloads shared by tests, examples and the benchmark harness. *)

(** Appendix 1, first example: "The base type of all arrays is integer.
    No subscript or range checking is performed.  The equation compiled
    is: x[q] := (a[i]+b[j]*(c[k]-d[l])+(e[m] div (f[n]+g[o]))*h[p])" *)
let appendix1_equation =
  {|
program appendix1a;
var i, j, k, l, m, n, o, p, q : integer;
    a, b, c, d, e, f, g, h, x : array[0..24] of integer;
begin
  i := 3; j := 4; k := 5; l := 6; m := 7; n := 8; o := 9; p := 10; q := 11;
  a[i] := 100; b[j] := 3; c[k] := 50; d[l] := 8;
  e[m] := 900; f[n] := 7; g[o] := 13; h[p] := 2;
  x[q] := a[i] + b[j] * (c[k] - d[l]) + (e[m] div (f[n] + g[o])) * h[p];
  write(x[q])
end.
|}

(** Appendix 1, second example:
    "if flag then i := j - 1 else i := z;  if p<>q then l := z;"
    where i,j,k,p,q are fullwords, flag a boolean, z a halfword. *)
let appendix1_branches =
  {|
program appendix1b;
var i, j, k, l, p, q : integer;
    flag : boolean;
    z : -1000..1000;
begin
  j := 41; z := 7; p := 3; q := 9; l := 0;
  flag := true;
  if flag then i := j - 1
          else i := z;
  if p <> q then l := z;
  write(i);
  write(l)
end.
|}

(** A compute kernel exercising loops, arrays and division. *)
let sieve =
  {|
program sieve;
var i, j, count : integer;
    composite : array[2..120] of boolean;
begin
  count := 0;
  for i := 2 to 120 do composite[i] := false;
  for i := 2 to 120 do
    if not composite[i] then begin
      count := count + 1;
      j := i + i;
      while j <= 120 do begin
        composite[j] := true;
        j := j + i
      end
    end;
  write(count)
end.
|}

(** Greatest common divisor through repeat/until and mod. *)
let gcd =
  {|
program gcd;
var a, b, t : integer;
begin
  a := 3528; b := 3780;
  repeat
    t := a mod b;
    a := b;
    b := t
  until b = 0;
  write(a)
end.
|}

(** Recursion-free Fibonacci with halfword storage. *)
let fibonacci =
  {|
program fib;
var n, i : integer;
    a, b, t : integer;
begin
  n := 30; a := 0; b := 1;
  for i := 1 to n do begin
    t := a + b;
    a := b;
    b := t
  end;
  write(a)
end.
|}

(** Sets, case dispatch and characters. *)
let classify =
  {|
program classify;
var vowels : set of 0..31;
    c, category, i : integer;
    counts : array[0..3] of integer;
begin
  include(vowels, 1); include(vowels, 5); include(vowels, 9);
  include(vowels, 15); include(vowels, 21);
  for i := 0 to 3 do counts[i] := 0;
  for c := 0 to 26 do begin
    if c in vowels then category := 1
    else if c mod 5 = 0 then category := 2
    else if odd(c) then category := 3
    else category := 0;
    case category of
      0: counts[0] := counts[0] + 1;
      1: counts[1] := counts[1] + 1;
      2: counts[2] := counts[2] + 1;
      3: counts[3] := counts[3] + 1
    end
  end;
  write(counts[0]); write(counts[1]); write(counts[2]); write(counts[3])
end.
|}

(** Real arithmetic: a rectangle-rule integral of x^2 on [0,1]. *)
let integral =
  {|
program integral;
var acc, xv, step : real;
    i : integer;
begin
  acc := 0.0;
  step := 0.01;
  xv := 0.005;
  for i := 1 to 100 do begin
    acc := acc + xv * xv * step;
    xv := xv + step
  end;
  write(acc)
end.
|}

(** Procedures sharing globals through the frame chain. *)
let procedures =
  {|
program procs;
var total, value : integer;
procedure double;
begin
  value := value * 2
end;
procedure accumulate;
var local : integer;
begin
  local := value + 1;
  total := total + local
end;
begin
  total := 0;
  value := 5;
  double;
  accumulate;
  double;
  accumulate;
  write(total);
  write(value)
end.
|}

(** Common subexpressions: the optimizer should compute a*b + c once. *)
let cse_demo =
  {|
program csedemo;
var a, b, c, x, y : integer;
begin
  a := 12; b := 34; c := 5;
  x := (a * b + c) * (a * b + c);
  y := (a * b + c) + x;
  write(x);
  write(y)
end.
|}

(** Bubble sort over a halfword array (storage-format coverage). *)
let bubble_sort =
  {|
program bubble;
var a : array[0..9] of -10000..10000;
    i, j, t, n : integer;
begin
  n := 9;
  for i := 0 to n do a[i] := (7 * i * i - 50 * i + 3) mod 97;
  for i := 0 to n - 1 do
    for j := 0 to n - 1 - i do
      if a[j] > a[j + 1] then begin
        t := a[j];
        a[j] := a[j + 1];
        a[j + 1] := t
      end;
  for i := 0 to n do write(a[i])
end.
|}

(** Collatz trajectory length: div/mod/odd and a while loop. *)
let collatz =
  {|
program collatz;
var n, steps : integer;
begin
  n := 27;
  steps := 0;
  while n <> 1 do begin
    if odd(n) then n := 3 * n + 1
    else n := n div 2;
    steps := steps + 1
  end;
  write(steps)
end.
|}

(** 3x3 matrix product, flattened into arrays. *)
let matmul =
  {|
program matmul;
var a, b, c : array[0..8] of integer;
    i, j, k, acc : integer;
begin
  for i := 0 to 8 do begin
    a[i] := i + 1;
    b[i] := 9 - i
  end;
  for i := 0 to 2 do
    for j := 0 to 2 do begin
      acc := 0;
      for k := 0 to 2 do
        acc := acc + a[3 * i + k] * b[3 * k + j];
      c[3 * i + j] := acc
    end;
  for i := 0 to 8 do write(c[i])
end.
|}

(** Character classification: chars, ord/chr, case over characters. *)
let chars =
  {|
program chars;
var c : char;
    digits, letters, others, code : integer;
begin
  digits := 0; letters := 0; others := 0;
  for code := 32 to 126 do begin
    c := chr(code);
    if (c >= '0') and (c <= '9') then digits := digits + 1
    else if ((c >= 'a') and (c <= 'z')) or ((c >= 'A') and (c <= 'Z')) then
      letters := letters + 1
    else others := others + 1
  end;
  write(digits); write(letters); write(others)
end.
|}

(** Horner evaluation with negative coefficients and subranges. *)
let horner =
  {|
program horner;
var coeff : array[0..4] of integer;
    x, acc, i : integer;
begin
  coeff[0] := 3; coeff[1] := -2; coeff[2] := 0; coeff[3] := 7; coeff[4] := -1;
  x := 5;
  acc := 0;
  for i := 0 to 4 do acc := acc * x + coeff[i];
  write(acc)
end.
|}

(** Newton's method for square roots: real arithmetic with convergence. *)
let newton =
  {|
program newton;
var x, estimate, previous : real;
    iterations : integer;
begin
  x := 1234.5;
  estimate := x / 2.0;
  previous := 0.0;
  iterations := 0;
  while abs(estimate - previous) > 0.0001 do begin
    previous := estimate;
    estimate := (estimate + x / estimate) / 2.0;
    iterations := iterations + 1
  end;
  write(estimate);
  write(iterations)
end.
|}

let all : (string * string) list =
  [
    ("appendix1-equation", appendix1_equation);
    ("appendix1-branches", appendix1_branches);
    ("sieve", sieve);
    ("gcd", gcd);
    ("fibonacci", fibonacci);
    ("classify", classify);
    ("integral", integral);
    ("procedures", procedures);
    ("cse-demo", cse_demo);
    ("bubble-sort", bubble_sort);
    ("collatz", collatz);
    ("matmul", matmul);
    ("chars", chars);
    ("horner", horner);
    ("newton", newton);
  ]
