lib/pipeline/pipeline.ml: Array Baseline Char Cogg Float Fmt Fun Ifl List Machine Pascal Programs Result Shaper
