lib/pipeline/programs.ml:
