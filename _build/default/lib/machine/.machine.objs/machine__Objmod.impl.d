lib/machine/objmod.ml: Bytes Char Fmt List Option String
