lib/machine/insn.ml: Fmt Hashtbl List
