lib/machine/sim.ml: Array Bytes Encode Float Fmt Hashtbl Int32 Int64
