lib/machine/encode.ml: Bytes Fmt Hashtbl Insn List
