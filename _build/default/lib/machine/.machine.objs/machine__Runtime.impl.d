lib/machine/runtime.ml: Encode Fmt Int32 Objmod Sim
