(** Object-module ("loader record") format.

    The paper's Loader Record Generator emits "standard system loader
    records" (MTS / OS-360 style).  We model the three record kinds the
    code generator needs: ESD (module name, origin, length), TXT (a run of
    code or data bytes at an address) and END (entry point).  Records can
    be serialized to a printable card-image-like text form and parsed back;
    {!load} places a module into a memory image. *)

type record =
  | Esd of { name : string; origin : int; length : int }
  | Txt of { addr : int; bytes : string }  (** raw bytes, address-relative *)
  | End of { entry : int }

type t = record list

let pp_record ppf = function
  | Esd { name; origin; length } ->
      Fmt.pf ppf "ESD %s %06X %06X" name origin length
  | Txt { addr; bytes } ->
      Fmt.pf ppf "TXT %06X %02X " addr (String.length bytes);
      String.iter (fun c -> Fmt.pf ppf "%02X" (Char.code c)) bytes
  | End { entry } -> Fmt.pf ppf "END %06X" entry

let pp ppf t = Fmt.(vbox (list ~sep:cut pp_record)) ppf t
let to_string t = Fmt.str "%a" pp t

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let b = Bytes.create (n / 2) in
    let bad = ref false in
    for i = 0 to (n / 2) - 1 do
      match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
      | Some v -> Bytes.set_uint8 b i v
      | None -> bad := true
    done;
    if !bad then Error "bad hex digit" else Ok (Bytes.to_string b)

let record_of_string line : (record, string) result =
  let parts =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  let hexint s = int_of_string_opt ("0x" ^ s) in
  match parts with
  | [ "ESD"; name; o; l ] -> (
      match (hexint o, hexint l) with
      | Some origin, Some length -> Ok (Esd { name; origin; length })
      | _ -> Error ("bad ESD record: " ^ line))
  | [ "TXT"; a; n; data ] -> (
      match (hexint a, hexint n, hex_decode data) with
      | Some addr, Some len, Ok bytes when String.length bytes = len ->
          Ok (Txt { addr; bytes })
      | _ -> Error ("bad TXT record: " ^ line))
  | [ "END"; e ] -> (
      match hexint e with
      | Some entry -> Ok (End { entry })
      | None -> Error ("bad END record: " ^ line))
  | _ -> Error ("unrecognized record: " ^ line)

let of_string s : (t, string) result =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | l :: ls -> (
        match record_of_string l with
        | Ok r -> go (r :: acc) ls
        | Error e -> Error e)
  in
  go [] lines

(** Total TXT payload in bytes — the "object module size" used for the
    paper's Table 2 page accounting. *)
let text_bytes (t : t) =
  List.fold_left
    (fun a -> function Txt { bytes; _ } -> a + String.length bytes | _ -> a)
    0 t

let entry (t : t) =
  List.find_map (function End { entry } -> Some entry | _ -> None) t

let module_name (t : t) =
  List.find_map (function Esd { name; _ } -> Some name | _ -> None) t

(** [load mem ~at t] relocates and copies the module's TXT payload into
    [mem]: each TXT record lands at [at + addr - origin].  Returns the
    absolute entry address. *)
let load (mem : Bytes.t) ~(at : int) (t : t) : (int, string) result =
  let origin =
    List.find_map
      (function Esd { origin; _ } -> Some origin | _ -> None)
      t
    |> Option.value ~default:0
  in
  let reloc a = at + a - origin in
  let exception Bad of string in
  try
    List.iter
      (function
        | Txt { addr; bytes } ->
            let dst = reloc addr in
            if dst < 0 || dst + String.length bytes > Bytes.length mem then
              raise (Bad (Fmt.str "TXT record out of memory bounds at %06X" addr))
            else Bytes.blit_string bytes 0 mem dst (String.length bytes)
        | Esd _ | End _ -> ())
      t;
    match entry t with
    | Some e -> Ok (reloc e)
    | None -> Error "object module has no END record"
  with Bad m -> Error m

(** Build an object module from a finished code image. *)
let of_code ?(name = "MAIN") ?(origin = 0) ~(entry : int) (code : Bytes.t) : t
    =
  let len = Bytes.length code in
  let chunk = 56 (* bytes per TXT record, card-image tradition *) in
  let rec txts pos acc =
    if pos >= len then List.rev acc
    else
      let n = min chunk (len - pos) in
      let bytes = Bytes.sub_string code pos n in
      txts (pos + n) (Txt { addr = origin + pos; bytes } :: acc)
  in
  (Esd { name; origin; length = len } :: txts 0 [])
  @ [ End { entry = origin + entry } ]
