(** The IF optimizer's common-subexpression detection (paper section 4.4):
    "All CSEs are detected, and their use counts established, by an IF
    optimizer."

    Scope: within a single statement tree, which keeps the transformation
    trivially safe (no assignment can intervene between the definition and
    its uses).  Candidate subtrees are pure integer-register-valued
    computations of at least [min_nodes] nodes; the first occurrence is
    wrapped in [make_common] (with the shaper-allocated temporary), later
    occurrences become [use_common]. *)

module Tree = Ifl.Tree
module Token = Ifl.Token

(* integer-register-valued operators eligible as CSE roots *)
let eligible_root = function
  | "iadd" | "isub" | "imult" | "idiv" | "imod" | "l_shift" | "r_shift"
  | "iabs" | "ineg" | "imax" | "imin" | "incr" | "decr" | "fullword"
  | "hlfword" | "byteword" ->
      true
  | _ -> false

(* purity: no label/branch/call machinery below, only arithmetic, loads
   and constants *)
let rec pure (Tree.Node (t, kids)) =
  (match t.Token.sym with
  | "iadd" | "isub" | "imult" | "idiv" | "imod" | "l_shift" | "r_shift"
  | "iabs" | "ineg" | "imax" | "imin" | "iodd" | "incr" | "decr"
  | "fullword" | "hlfword" | "byteword" | "addr" | "pos_constant"
  | "neg_constant" | "dsp" | "v" | "r" | "lng" | "elmnt" ->
      true
  | _ -> false)
  && List.for_all pure kids

let min_nodes = 3

type state = {
  mutable next_cse : int;
  mutable frame : Layout.t;
  mutable temps : (int * int) list; (* cse id -> temp displacement *)
}

(* canonical key for structural equality *)
let rec key (Tree.Node (t, kids)) =
  Token.to_string t ^ "(" ^ String.concat "," (List.map key kids) ^ ")"

(* Children in *positional* spots are grammar punctuation, not value
   expressions: the address of an assign, the procedure-address load of a
   call, the CSE temporary of make_common.  The node in such a spot can
   never be replaced (though computations nested deeper inside it can). *)
let positional sym i =
  match (sym, i) with
  | "assign", 0 -> true
  | "procedure_call", 1 -> true
  | "make_common", 2 -> true
  | _ -> false

(* count occurrences of every eligible subtree *)
let rec census ?(root_ok = true) (tbl : (string, int) Hashtbl.t)
    (Tree.Node (t, kids) as tree) =
  if
    root_ok
    && eligible_root t.Token.sym
    && Tree.size tree >= min_nodes
    && pure tree
  then begin
    let k = key tree in
    Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0)
  end;
  List.iteri
    (fun i kid -> census ~root_ok:(not (positional t.Token.sym i)) tbl kid)
    kids

(* rewrite: for chosen keys, first occurrence -> make_common, rest ->
   use_common.  Top-down so outermost repeats win; inside a replaced
   subtree no further rewriting happens (its copies are gone). *)
type chosen = { id : int; total : int; mutable seen : int; temp : int }

let rec rewrite ?(root_ok = true) (choice : (string, chosen) Hashtbl.t)
    (Tree.Node (t, kids) as tree) : Tree.t =
  let rewrite_kids () =
    List.mapi
      (fun i kid -> rewrite ~root_ok:(not (positional t.Token.sym i)) choice kid)
      kids
  in
  match (if root_ok then Hashtbl.find_opt choice (key tree) else None) with
  | Some c when c.seen = 0 ->
      c.seen <- 1;
      (* definition: keep the computation, declare the CSE *)
      let inner = Tree.Node (t, rewrite_kids ()) in
      Tree.node "make_common"
        [
          Tree.Node (Token.cse "cse" c.id, []);
          Tree.Node (Token.int "cnt" (c.total - 1), []);
          Tree.node "fullword"
            [
              Tree.Node (Token.int "dsp" c.temp, []);
              Tree.Node (Token.reg "r" Machine.Runtime.stack_base, []);
            ];
          inner;
        ]
  | Some c ->
      c.seen <- c.seen + 1;
      Tree.node "use_common" [ Tree.Node (Token.cse "cse" c.id, []) ]
  | None -> Tree.Node (t, rewrite_kids ())

(** Optimize one statement tree.  [state] carries the CSE numbering and
    the frame that provides temporaries. *)
let optimize_statement (st : state) (tree : Tree.t) : Tree.t =
  let tbl = Hashtbl.create 16 in
  census tbl tree;
  let choice = Hashtbl.create 4 in
  (* choose outermost repeated subtrees: walk top-down, and when a node is
     chosen do not consider its descendants *)
  let rec choose ?(root_ok = true) (Tree.Node (t, kids) as tr) =
    let k = key tr in
    if root_ok && Hashtbl.mem choice k then
      (* every occurrence of a chosen subtree is replaced wholesale, so
         nothing below it can need its own CSE *)
      ()
    else if
      root_ok
      && eligible_root t.Token.sym
      && Tree.size tr >= min_nodes
      && pure tr
      && Option.value (Hashtbl.find_opt tbl k) ~default:0 >= 2
    then begin
      let id = st.next_cse in
      st.next_cse <- id + 1;
      let temp = Layout.temp st.frame (Fmt.str "cse-%d" id) in
      st.temps <- (id, temp) :: st.temps;
      Hashtbl.replace choice k
        { id; total = Hashtbl.find tbl k; seen = 0; temp }
      (* descendants are not explored: their copies disappear with the
         replacement *)
    end
    else
      List.iteri
        (fun i kid -> choose ~root_ok:(not (positional t.Token.sym i)) kid)
        kids
  in
  choose tree;
  if Hashtbl.length choice = 0 then tree else rewrite choice tree

(** Optimize a shaped program: CSEs are numbered across the module (they
    are "valid throughout the compilation"), temporaries come from the
    frame owning the statement. *)
let optimize (shaped : Irgen.shaped) : Irgen.shaped =
  let st = { next_cse = 1; frame = shaped.Irgen.main_frame; temps = [] } in
  (* statements before the first procedure label belong to main; after a
     label_def that matches a procedure entry, switch frames *)
  let proc_label_frames =
    List.filter_map
      (fun (name, _, lbl) ->
        Option.map (fun f -> (lbl, f)) (List.assoc_opt name shaped.Irgen.proc_frames))
      shaped.Irgen.proc_slots
  in
  let trees =
    List.map
      (fun tree ->
        (match tree with
        | Tree.Node (t, [ Tree.Node (l, []) ]) when t.Token.sym = "label_def"
          -> (
            match l.Token.value with
            | Ifl.Value.Label n | Ifl.Value.Int n -> (
                match List.assoc_opt n proc_label_frames with
                | Some f -> st.frame <- f
                | None -> ())
            | _ -> ())
        | _ -> ());
        optimize_statement st tree)
      shaped.Irgen.trees
  in
  { shaped with Irgen.trees }
