lib/shaper/irgen.ml: Char Float Fmt Ifl Layout List Machine Option Pascal
