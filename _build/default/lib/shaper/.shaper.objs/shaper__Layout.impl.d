lib/shaper/layout.ml: Fmt Hashtbl List Machine Pascal
