lib/shaper/cse_opt.ml: Fmt Hashtbl Ifl Irgen Layout List Machine Option String
