(** Storage layout: the shaper "resolves variable addresses by assigning
    base registers and displacements" (paper section 1).

    Every activation's variables live in its stack frame, addressed off
    r13.  Subranges that fit get halfword storage, booleans and chars a
    byte, reals a doubleword — the operand-typing discipline of paper
    section 4.5.  The whole frame must stay within one page (4096 bytes)
    so plain 12-bit displacements reach everything. *)

module Ast = Pascal.Ast

type storage = Sfull | Shalf | Sbyte | Sdouble | Sset of int | Sarr of arr

and arr = { elem : storage; lo : int; n : int }

let rec size_of = function
  | Sfull -> 4
  | Shalf -> 2
  | Sbyte -> 1
  | Sdouble -> 8
  | Sset bytes -> bytes
  | Sarr { elem; n; _ } -> size_of elem * n

let align_of = function
  | Sfull -> 4
  | Shalf -> 2
  | Sbyte -> 1
  | Sdouble -> 8
  | Sset _ -> 4
  | Sarr { elem; _ } ->
      (match elem with Sdouble -> 8 | Sfull -> 4 | Shalf -> 2 | _ -> 1)

(** The IF type operator naming this storage format. *)
let type_operator = function
  | Sfull -> "fullword"
  | Shalf -> "hlfword"
  | Sbyte -> "byteword"
  | Sdouble -> "dblrealword"
  | Sset _ -> "byteword"
  | Sarr _ -> invalid_arg "Layout.type_operator: array"

let rec storage_of (t : Ast.ty) : storage =
  match t with
  | Ast.Tint -> Sfull
  | Ast.Tbool | Ast.Tchar -> Sbyte
  | Ast.Treal -> Sdouble
  | Ast.Tsub (lo, hi) ->
      if lo >= -32768 && hi <= 32767 then Shalf else Sfull
  | Ast.Tset n -> Sset ((n + 8) / 8)
  | Ast.Tarray { lo; hi; elem } ->
      Sarr { elem = storage_of elem; lo; n = hi - lo + 1 }

type var_info = { disp : int; stype : storage; ty : Ast.ty }

exception Frame_overflow of string

type t = {
  vars : (string, var_info) Hashtbl.t;
  mutable next : int;
  page_limit : int;
}

let create () =
  {
    vars = Hashtbl.create 16;
    next = Machine.Runtime.locals_base;
    page_limit = 4096;
  }

let align t a = t.next <- (t.next + a - 1) / a * a

let reserve t name size al =
  align t al;
  let disp = t.next in
  t.next <- t.next + size;
  if t.next > t.page_limit then
    raise
      (Frame_overflow
         (Fmt.str "frame exceeds one page (4096 bytes) placing %s" name));
  disp

let add_var t (d : Ast.var_decl) : var_info =
  let stype = storage_of d.Ast.v_ty in
  let disp = reserve t d.Ast.v_name (size_of stype) (align_of stype) in
  let info = { disp; stype; ty = d.Ast.v_ty } in
  Hashtbl.replace t.vars d.Ast.v_name info;
  info

let find t name = Hashtbl.find_opt t.vars name

(** Anonymous temporaries (CSE homes, for-loop bounds, case selectors). *)
let temp t ?(size = 4) ?(al = 4) what : int = reserve t what size al

let frame_bytes t = t.next

let of_decls (decls : Ast.var_decl list) : t =
  let t = create () in
  List.iter (fun d -> ignore (add_var t d)) decls;
  t
