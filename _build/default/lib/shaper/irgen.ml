(** The shaping routine: typed Pascal AST -> intermediate-form trees.

    "The intermediate form emitted by the front end ... is manipulated by
    a shaping routine which resolves variable addresses by assigning base
    registers and displacements" (paper section 1).  This module is where
    all addressing decisions are made: dedicated base registers appear as
    pre-bound [r] tokens in the IF, storage formats select the typed
    operators ([fullword]/[hlfword]/[byteword]/[dblrealword]), and the
    machine-independent idioms (increment/decrement, shift-multiplies,
    halve) are exposed as the operators the grammar fuses. *)

module Ast = Pascal.Ast
module Tree = Ifl.Tree
module Token = Ifl.Token

type error = { msg : string }

let pp_error ppf e = Fmt.pf ppf "shaper: %s" e.msg

exception Fail of error

let fail fmt = Fmt.kstr (fun msg -> raise (Fail { msg })) fmt

(* -- branch masks (see lib/machine/runtime.ml) ------------------------------ *)

let true_mask = function
  | Ast.Lt -> 4
  | Ast.Le -> 12
  | Ast.Gt -> 2
  | Ast.Ge -> 10
  | Ast.Eq -> 8
  | Ast.Ne -> 7
  | _ -> invalid_arg "true_mask"

let false_mask op = 15 land lnot (true_mask op)
let false_cond = Machine.Runtime.mask_false (* boolean cc: branch if false *)
let true_cond = Machine.Runtime.mask_true

(* -- tree building ----------------------------------------------------------- *)

let node = Tree.node
let leaf_op name = Tree.leaf name
let leaf_int name v = Tree.Node (Token.int name v, [])
let leaf_reg n = Tree.Node (Token.reg "r" n, [])
let leaf_label l = Tree.Node (Token.label "lbl" l, [])
let leaf_cond m = Tree.Node (Token.cond "cond" m, [])
let leaf_cse c = Tree.Node (Token.cse "cse" c, [])
let r13 () = leaf_reg Machine.Runtime.stack_base
let r10 () = leaf_reg Machine.Runtime.pr_base

type ctx = {
  main : Layout.t;
  proc_frames : (string * Layout.t) list;
  proc_slots : (string * int * int) list; (* name, PSA slot, label *)
  mutable current : Layout.t; (* frame of the scope being generated *)
  mutable in_proc : bool;
  mutable next_label : int;
  checks : bool;
  out_int_disp : int;
  out_real_disp : int;
  wcount_i : int;
  wcount_r : int;
}

let fresh_label ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

(* -- places ------------------------------------------------------------------ *)

(** Where a scalar lives: type operator, displacement, optional (scaled)
    index tree, and the base-register tree. *)
type place = {
  top : string;
  dsp : int;
  index : Tree.t option;
  base : Tree.t;
  stype : Layout.storage;
}

let var_info ctx name : Layout.var_info * Tree.t =
  match Layout.find ctx.current name with
  | Some info -> (info, r13 ())
  | None -> (
      match Layout.find ctx.main name with
      | Some info when ctx.in_proc ->
          (* a global reached through the frame back-chain *)
          ( info,
            node "fullword" [ leaf_int "dsp" Machine.Runtime.old_base; r13 () ] )
      | Some info -> (info, r13 ())
      | None -> fail "unresolved variable %s" name)

let scalar_place ctx name : place =
  let info, base = var_info ctx name in
  match info.Layout.stype with
  | Layout.Sarr _ -> fail "array %s used as a scalar" name
  | st -> { top = Layout.type_operator st; dsp = info.Layout.disp; index = None; base; stype = st }

(* -- integer constants --------------------------------------------------------- *)

let rec const_tree (n : int) : Tree.t =
  if n >= 0 && n <= 4095 then node "pos_constant" [ leaf_int "v" n ]
  else if n < 0 && n >= -4095 then node "neg_constant" [ leaf_int "v" (-n) ]
  else if n < 0 then node "ineg" [ const_tree (-n) ]
  else
    (* Build from 12-bit pieces: (hi << 12) + lo.  The low piece is added
       through a register (AR), never the LA idiom: LA truncates to a
       24-bit address, which large constants would overflow. *)
    let hi = node "l_shift" [ const_tree (n lsr 12); leaf_int "v" 12 ] in
    if n land 0xFFF = 0 then hi
    else node "iadd" [ hi; const_tree (n land 0xFFF) ]

let power_of_two n =
  if n <= 0 then None
  else
    let rec go k v = if v = n then Some k else if v > n then None else go (k + 1) (v * 2) in
    go 0 1

(* -- expression generation ------------------------------------------------------ *)

(* expression types as the front end sees them *)
let rec expr_type ctx (e : Ast.expr) : Ast.ty =
  match e with
  | Ast.Eint _ -> Ast.Tint
  | Ast.Ereal _ -> Ast.Treal
  | Ast.Ebool _ -> Ast.Tbool
  | Ast.Echar _ -> Ast.Tchar
  | Ast.Evar v ->
      let info, _ = var_info ctx v in
      Ast.scalar info.Layout.ty
  | Ast.Eindex (v, _) -> (
      let info, _ = var_info ctx v in
      match info.Layout.ty with
      | Ast.Tarray { elem; _ } -> Ast.scalar elem
      | _ -> fail "%s is not an array" v)
  | Ast.Eun (Ast.Neg, e) -> expr_type ctx e
  | Ast.Eun (Ast.Not, _) -> Ast.Tbool
  | Ast.Ebin ((Ast.Add | Ast.Sub | Ast.Mul), a, b) -> (
      match (expr_type ctx a, expr_type ctx b) with
      | Ast.Tint, Ast.Tint -> Ast.Tint
      | _ -> Ast.Treal)
  | Ast.Ebin ((Ast.Div | Ast.Mod), _, _) -> Ast.Tint
  | Ast.Ebin (Ast.RDiv, _, _) -> Ast.Treal
  | Ast.Ebin ((Ast.And | Ast.Or | Ast.In), _, _) -> Ast.Tbool
  | Ast.Ebin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), _, _) ->
      Ast.Tbool
  | Ast.Ecall ("abs", [ a ]) -> expr_type ctx a
  | Ast.Ecall ("sqr", [ a ]) -> expr_type ctx a
  | Ast.Ecall ("odd", _) -> Ast.Tbool
  | Ast.Ecall ("trunc", _) -> Ast.Tint
  | Ast.Ecall ("ord", _) -> Ast.Tint
  | Ast.Ecall ("chr", _) -> Ast.Tchar
  | Ast.Ecall (("succ" | "pred"), [ a ]) -> expr_type ctx a
  | Ast.Ecall (("min" | "max"), [ a; b ]) -> (
      match (expr_type ctx a, expr_type ctx b) with
      | Ast.Tint, Ast.Tint -> Ast.Tint
      | _ -> Ast.Treal)
  | Ast.Ecall (f, _) -> fail "unknown function %s" f

(* the (possibly indexed) place of an lvalue or variable access *)
and place_of ctx (name : string) (idx : Ast.expr option) : place =
  match idx with
  | None -> scalar_place ctx name
  | Some idx -> (
      let info, base = var_info ctx name in
      match info.Layout.stype with
      | Layout.Sarr { elem; lo; n } ->
          let elsize = Layout.size_of elem in
          let idx_t = gen_int ctx idx in
          let idx_t =
            if ctx.checks then
              node "subscript_check"
                [ idx_t; const_tree lo; const_tree (lo + n - 1) ]
            else idx_t
          in
          let scaled =
            match elsize with
            | 1 -> idx_t
            | 2 -> node "l_shift" [ idx_t; leaf_int "v" 1 ]
            | 4 -> node "l_shift" [ idx_t; leaf_int "v" 2 ]
            | 8 -> node "l_shift" [ idx_t; leaf_int "v" 3 ]
            | _ -> node "imult" [ idx_t; const_tree elsize ]
          in
          let adj = info.Layout.disp - (lo * elsize) in
          let dsp, index =
            if adj >= 0 && adj <= 4095 then (adj, scaled)
            else
              (info.Layout.disp, node "iadd" [ scaled; const_tree (-lo * elsize) ])
          in
          {
            top = Layout.type_operator elem;
            dsp;
            index = Some index;
            base;
            stype = elem;
          }
      | _ -> fail "%s is not an array" name)

and load_place (p : place) : Tree.t =
  match p.index with
  | None -> node p.top [ leaf_int "dsp" p.dsp; p.base ]
  | Some idx -> node p.top [ idx; leaf_int "dsp" p.dsp; p.base ]

(* integer-valued (GPR) expression *)
and gen_int ctx (e : Ast.expr) : Tree.t =
  match e with
  | Ast.Eint n -> const_tree n
  | Ast.Echar c -> const_tree (Char.code c)
  | Ast.Ebool _ -> gen_bool_r ctx e
  | Ast.Evar v -> (
      let info, _ = var_info ctx v in
      match Ast.scalar info.Layout.ty with
      | Ast.Tbool -> gen_bool_r ctx e
      | _ -> load_place (place_of ctx v None))
  | Ast.Eindex (v, idx) -> load_place (place_of ctx v (Some idx))
  | Ast.Eun (Ast.Neg, a) -> node "ineg" [ gen_int ctx a ]
  | Ast.Eun (Ast.Not, _) -> gen_bool_r ctx e
  (* The LA address-add idiom (incr, iadd-with-literal) truncates to 24
     bits on the real machine, so the shaper only emits it where values
     are provably small (constant-bounded for-loop counters, hidden
     write counters); a general x+1 goes through a register add. *)
  | Ast.Ebin (Ast.Add, a, b) -> node "iadd" [ gen_int ctx a; gen_int ctx b ]
  | Ast.Ebin (Ast.Sub, a, Ast.Eint 1) -> node "decr" [ gen_int ctx a ]
  | Ast.Ebin (Ast.Sub, a, b) -> node "isub" [ gen_int ctx a; gen_int ctx b ]
  | Ast.Ebin (Ast.Mul, a, Ast.Eint n) when power_of_two n <> None ->
      node "l_shift" [ gen_int ctx a; leaf_int "v" (Option.get (power_of_two n)) ]
  | Ast.Ebin (Ast.Mul, Ast.Eint n, a) when power_of_two n <> None ->
      node "l_shift" [ gen_int ctx a; leaf_int "v" (Option.get (power_of_two n)) ]
  | Ast.Ebin (Ast.Mul, a, b) -> node "imult" [ gen_int ctx a; gen_int ctx b ]
  | Ast.Ebin (Ast.Div, a, b) -> node "idiv" [ gen_int ctx a; gen_int ctx b ]
  | Ast.Ebin (Ast.Mod, a, b) -> node "imod" [ gen_int ctx a; gen_int ctx b ]
  | Ast.Ebin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.In
              | Ast.And | Ast.Or), _, _) ->
      gen_bool_r ctx e
  | Ast.Ebin (Ast.RDiv, _, _) -> fail "real value in integer context"
  | Ast.Ecall ("abs", [ a ]) -> node "iabs" [ gen_int ctx a ]
  | Ast.Ecall ("sqr", [ a ]) ->
      let t = gen_int ctx a in
      node "imult" [ t; t ]
  | Ast.Ecall ("odd", _) -> gen_bool_r ctx e
  | Ast.Ecall ("ord", [ a ]) -> gen_int ctx a
  | Ast.Ecall ("chr", [ a ]) -> gen_int ctx a
  | Ast.Ecall ("succ", [ a ]) ->
      node "iadd" [ gen_int ctx a; const_tree 1 ]
  | Ast.Ecall ("pred", [ a ]) -> node "decr" [ gen_int ctx a ]
  | Ast.Ecall ("min", [ a; b ]) -> node "imin" [ gen_int ctx a; gen_int ctx b ]
  | Ast.Ecall ("max", [ a; b ]) -> node "imax" [ gen_int ctx a; gen_int ctx b ]
  | Ast.Ecall ("trunc", [ a ]) -> (
      match expr_type ctx a with
      | Ast.Tint -> gen_int ctx a
      | _ -> node "x_s_cnvrt" [ gen_real ctx a ])
  | Ast.Ereal _ -> fail "real value in integer context"
  | Ast.Ecall (f, _) -> fail "function %s not valid here" f

(* real (FPR) expression; integers are converted *)
and gen_real ctx (e : Ast.expr) : Tree.t =
  let as_real e =
    match expr_type ctx e with
    | Ast.Treal -> gen_real ctx e
    | _ -> node "s_x_cnvrt" [ gen_int ctx e ]
  in
  match e with
  | Ast.Ereal f -> real_const_tree f
  | Ast.Eint n -> node "s_x_cnvrt" [ const_tree n ]
  | Ast.Evar _ | Ast.Eindex _ -> (
      match expr_type ctx e with
      | Ast.Treal -> (
          match e with
          | Ast.Evar v -> load_place (place_of ctx v None)
          | Ast.Eindex (v, i) -> load_place (place_of ctx v (Some i))
          | _ -> assert false)
      | _ -> node "s_x_cnvrt" [ gen_int ctx e ])
  | Ast.Eun (Ast.Neg, a) -> node "rneg" [ as_real a ]
  | Ast.Ebin (Ast.RDiv, a, Ast.Ereal 2.0) -> node "halve" [ as_real a ]
  | Ast.Ebin (Ast.Add, a, b) -> node "radd" [ as_real a; as_real b ]
  | Ast.Ebin (Ast.Sub, a, b) -> node "rsub" [ as_real a; as_real b ]
  | Ast.Ebin (Ast.Mul, a, b) -> node "rmult" [ as_real a; as_real b ]
  | Ast.Ebin (Ast.RDiv, a, b) -> node "rdiv" [ as_real a; as_real b ]
  | Ast.Ecall ("abs", [ a ]) -> node "rabs" [ as_real a ]
  | Ast.Ecall ("sqr", [ a ]) ->
      let t = as_real a in
      node "rmult" [ t; t ]
  | Ast.Ecall ("min", [ a; b ]) -> node "rmin" [ as_real a; as_real b ]
  | Ast.Ecall ("max", [ a; b ]) -> node "rmax" [ as_real a; as_real b ]
  | _ -> (
      match expr_type ctx e with
      | Ast.Tint -> node "s_x_cnvrt" [ gen_int ctx e ]
      | _ -> fail "expression not valid in real context")

(* Real literal: synthesized as a 30-bit integer scaled by an exact power
   of two (divisions/multiplications by 2^k are exact in floating point,
   so the only error is the 2^-30 mantissa rounding).  There is no
   literal pool; the program text is the only source of reals. *)
and real_const_tree (f : float) : Tree.t =
  if Float.is_nan f || Float.abs f = Float.infinity then
    fail "real literal %g not representable" f
  else if f < 0.0 then node "rneg" [ real_const_tree (-.f) ]
  else if Float.is_integer f && f < 2147483647.0 then
    node "s_x_cnvrt" [ const_tree (int_of_float f) ]
  else begin
    let mant, e = Float.frexp f in
    (* f = mant * 2^e with mant in [0.5, 1); m/2^(30-e) ~ f *)
    let m = int_of_float (Float.round (Float.ldexp mant 30)) in
    let acc = node "s_x_cnvrt" [ const_tree m ] in
    let rec scale acc k =
      if k = 0 then acc
      else if k > 0 then
        let step = min k 30 in
        scale
          (node "rdiv" [ acc; node "s_x_cnvrt" [ const_tree (1 lsl step) ] ])
          (k - step)
      else
        let step = min (-k) 30 in
        scale
          (node "rmult" [ acc; node "s_x_cnvrt" [ const_tree (1 lsl step) ] ])
          (k + step)
    in
    scale acc (30 - e)
  end

(* boolean expression as a 0/1 register value *)
and gen_bool_r ctx (e : Ast.expr) : Tree.t =
  match e with
  | Ast.Ebool b -> const_tree (if b then 1 else 0)
  | Ast.Evar v -> (
      let info, _ = var_info ctx v in
      match Ast.scalar info.Layout.ty with
      | Ast.Tbool -> load_place (place_of ctx v None)
      | _ -> fail "%s is not a boolean" v)
  | Ast.Eindex (v, i) -> load_place (place_of ctx v (Some i))
  | Ast.Eun (Ast.Not, a) -> node "boolean_not" [ gen_bool_r ctx a ]
  | Ast.Ebin (Ast.And, a, b) ->
      node_cond false_cond
        (node "boolean_and" [ gen_bool_r ctx a; gen_bool_r ctx b ])
  | Ast.Ebin (Ast.Or, a, b) ->
      node_cond false_cond
        (node "boolean_or" [ gen_bool_r ctx a; gen_bool_r ctx b ])
  | Ast.Ebin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op, _, _)
    ->
      node_cond (false_mask op) (compare_cc ctx e)
  | Ast.Ebin (Ast.In, _, _) -> node_cond false_cond (membership_cc ctx e)
  | Ast.Ecall ("odd", [ a ]) -> node "iodd" [ gen_int ctx a ]
  | _ -> fail "expression is not a boolean"

(* the r ::= cond cc production: materialize a condition as 0/1 *)
and node_cond (mask : int) (cc_tree : Tree.t) : Tree.t =
  Tree.Node (Token.cond "cond" mask, [ cc_tree ])

(* a comparison as a condition-code tree *)
and compare_cc ctx (e : Ast.expr) : Tree.t =
  match e with
  | Ast.Ebin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne), a, b) -> (
      match (expr_type ctx a, expr_type ctx b) with
      | (Ast.Treal | Ast.Tint), (Ast.Treal | Ast.Tint)
        when expr_type ctx a = Ast.Treal || expr_type ctx b = Ast.Treal ->
          node "rcompare" [ gen_real ctx a; gen_real ctx b ]
      | Ast.Tbool, Ast.Tbool ->
          node "icompare" [ gen_bool_r ctx a; gen_bool_r ctx b ]
      | _ -> node "icompare" [ gen_int ctx a; gen_int ctx b ])
  | _ -> invalid_arg "compare_cc"

(* set membership as a condition-code tree (TM-style) *)
and membership_cc ctx (e : Ast.expr) : Tree.t =
  match e with
  | Ast.Ebin (Ast.In, x, Ast.Evar s) -> (
      let info, base = var_info ctx s in
      match info.Layout.stype with
      | Layout.Sset _ -> (
          match x with
          | Ast.Eint k when k >= 0 ->
              node "test_bit_value"
                [
                  node "addr" [ leaf_int "dsp" (info.Layout.disp + (k / 8)); base ];
                  Tree.Node (Token.int "elmnt" (0x80 lsr (k mod 8)), []);
                ]
          | _ ->
              node "test_bit_value"
                [
                  node "addr" [ leaf_int "dsp" info.Layout.disp; base ];
                  gen_int ctx x;
                ])
      | _ -> fail "%s is not a set" s)
  | Ast.Ebin (Ast.In, _, _) -> fail "in requires a set variable"
  | _ -> invalid_arg "membership_cc"

(* -- conditions in branch context ---------------------------------------------- *)

let uncond_branch lbl = node "branch_op" [ leaf_label lbl ]
let cond_branch lbl mask cc = node "branch_op" [ leaf_label lbl; leaf_cond mask; cc ]
let label_def lbl = node "label_def" [ leaf_label lbl ]

(* emit statement trees that branch to [lbl] when [e] is false/true *)
let rec branch_false ctx (e : Ast.expr) (lbl : int) : Tree.t list =
  match e with
  | Ast.Ebool true -> []
  | Ast.Ebool false -> [ uncond_branch lbl ]
  | Ast.Eun (Ast.Not, a) -> branch_true ctx a lbl
  | Ast.Ebin (Ast.And, a, b) -> branch_false ctx a lbl @ branch_false ctx b lbl
  | Ast.Ebin (Ast.Or, a, b) ->
      let ltrue = fresh_label ctx in
      branch_true ctx a ltrue @ branch_false ctx b lbl @ [ label_def ltrue ]
  | Ast.Ebin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op, _, _)
    ->
      [ cond_branch lbl (false_mask op) (compare_cc ctx e) ]
  | Ast.Ebin (Ast.In, _, _) ->
      [ cond_branch lbl false_cond (membership_cc ctx e) ]
  | Ast.Evar v -> (
      let info, _ = var_info ctx v in
      match Ast.scalar info.Layout.ty with
      | Ast.Tbool ->
          [
            cond_branch lbl false_cond
              (node "boolean_test" [ load_place (place_of ctx v None) ]);
          ]
      | _ -> fail "%s is not a boolean" v)
  | e ->
      [
        cond_branch lbl false_cond
          (node "boolean_test" [ gen_bool_r ctx e ]);
      ]

and branch_true ctx (e : Ast.expr) (lbl : int) : Tree.t list =
  match e with
  | Ast.Ebool true -> [ uncond_branch lbl ]
  | Ast.Ebool false -> []
  | Ast.Eun (Ast.Not, a) -> branch_false ctx a lbl
  | Ast.Ebin (Ast.Or, a, b) -> branch_true ctx a lbl @ branch_true ctx b lbl
  | Ast.Ebin (Ast.And, a, b) ->
      let lfalse = fresh_label ctx in
      branch_false ctx a lfalse @ branch_true ctx b lbl @ [ label_def lfalse ]
  | Ast.Ebin ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op, _, _)
    ->
      [ cond_branch lbl (true_mask op) (compare_cc ctx e) ]
  | Ast.Ebin (Ast.In, _, _) ->
      [ cond_branch lbl true_cond (membership_cc ctx e) ]
  | e ->
      [
        cond_branch lbl true_cond
          (node "boolean_test" [ gen_bool_r ctx e ]);
      ]

(* -- statements ------------------------------------------------------------------ *)

let assign_tree (p : place) (value : Tree.t) : Tree.t =
  let addr =
    match p.index with
    | None -> node p.top [ leaf_int "dsp" p.dsp; p.base ]
    | Some idx -> node p.top [ idx; leaf_int "dsp" p.dsp; p.base ]
  in
  node "assign" [ addr; value ]

let rec gen_stmt ctx (s : Ast.stmt) : Tree.t list =
  match s with
  | Ast.Sempty -> []
  | Ast.Sblock body -> List.concat_map (gen_stmt ctx) body
  | Ast.Sassign (lv, e) -> (
      let p =
        match lv with
        | Ast.Lvar v -> place_of ctx v None
        | Ast.Lindex (v, i) -> place_of ctx v (Some i)
      in
      match p.stype with
      | Layout.Sdouble -> [ assign_tree p (gen_real ctx e) ]
      | Layout.Sbyte -> (
          match expr_type ctx e with
          | Ast.Tbool -> [ assign_tree p (gen_bool_r ctx e) ]
          | _ -> [ assign_tree p (gen_int ctx e) ])
      | _ -> [ assign_tree p (gen_int ctx e) ])
  | Ast.Sif (c, a, []) ->
      let lend = fresh_label ctx in
      branch_false ctx c lend
      @ List.concat_map (gen_stmt ctx) a
      @ [ label_def lend ]
  | Ast.Sif (c, a, b) ->
      let lelse = fresh_label ctx in
      let lend = fresh_label ctx in
      branch_false ctx c lelse
      @ List.concat_map (gen_stmt ctx) a
      @ [ uncond_branch lend; label_def lelse ]
      @ List.concat_map (gen_stmt ctx) b
      @ [ label_def lend ]
  | Ast.Swhile (c, body) ->
      let ltop = fresh_label ctx in
      let lend = fresh_label ctx in
      [ label_def ltop ]
      @ branch_false ctx c lend
      @ List.concat_map (gen_stmt ctx) body
      @ [ uncond_branch ltop; label_def lend ]
  | Ast.Srepeat (body, c) ->
      let ltop = fresh_label ctx in
      [ label_def ltop ]
      @ List.concat_map (gen_stmt ctx) body
      @ branch_false ctx c ltop
  | Ast.Sfor { var; from_; downto_; to_; body } ->
      let p = place_of ctx var None in
      let limit = Layout.temp ctx.current "for-limit" in
      let limit_place =
        { top = "fullword"; dsp = limit; index = None; base = r13 ();
          stype = Layout.Sfull }
      in
      let ltop = fresh_label ctx in
      let lend = fresh_label ctx in
      let exit_mask = if downto_ then 4 (* < limit *) else 2 (* > limit *) in
      (* the LA increment idiom is only safe when the counter is known to
         stay within the 24-bit address range *)
      let small_bounds =
        match (from_, to_) with
        | Ast.Eint a, Ast.Eint b -> a >= 0 && b >= 0 && b < 0xFFFFFF
        | _ -> false
      in
      let step =
        if downto_ then node "decr" [ load_place p ]
        else if small_bounds then node "incr" [ load_place p ]
        else node "iadd" [ load_place p; const_tree 1 ]
      in
      [
        assign_tree limit_place (gen_int ctx to_);
        assign_tree p (gen_int ctx from_);
        label_def ltop;
        cond_branch lend exit_mask
          (node "icompare" [ load_place p; load_place limit_place ]);
      ]
      @ List.concat_map (gen_stmt ctx) body
      @ [ assign_tree p step; uncond_branch ltop; label_def lend ]
  | Ast.Scase (sel, arms, otherwise) -> gen_case ctx sel arms otherwise
  | Ast.Scall ("include", [ Ast.Evar s; e ]) -> [ gen_set_op ctx `Set s e ]
  | Ast.Scall ("exclude", [ Ast.Evar s; e ]) -> [ gen_set_op ctx `Clear s e ]
  | Ast.Scall (("include" | "exclude"), _) -> fail "bad include/exclude"
  | Ast.Scall ("write", [ e ]) -> gen_write ctx e
  | Ast.Scall (p, _) -> (
      match
        List.find_opt (fun (name, _, _) -> name = p) ctx.proc_slots
      with
      | Some (_, slot, _) ->
          [
            node "procedure_call"
              [
                leaf_int "cnt" 0;
                node "fullword"
                  [
                    leaf_int "dsp" (Machine.Runtime.psa_proctab + (4 * slot));
                    r10 ();
                  ];
              ];
          ]
      | None -> fail "unknown procedure %s" p)

and gen_set_op ctx op (s : string) (e : Ast.expr) : Tree.t =
  let info, base = var_info ctx s in
  match info.Layout.stype with
  | Layout.Sset _ -> (
      let opname =
        match op with `Set -> "set_bit_value" | `Clear -> "clear_bit_value"
      in
      match e with
      | Ast.Eint k when k >= 0 ->
          let mask = 0x80 lsr (k mod 8) in
          let mask = match op with `Set -> mask | `Clear -> 0xFF land lnot mask in
          node opname
            [
              node "addr" [ leaf_int "dsp" (info.Layout.disp + (k / 8)); base ];
              Tree.Node (Token.int "elmnt" mask, []);
            ]
      | _ ->
          node opname
            [
              node "addr" [ leaf_int "dsp" info.Layout.disp; base ];
              gen_int ctx e;
            ])
  | _ -> fail "%s is not a set" s

and gen_case ctx sel arms otherwise : Tree.t list =
  let labels = List.concat_map fst arms in
  (match labels with [] -> fail "empty case" | _ -> ());
  let lo = List.fold_left min max_int labels in
  let hi = List.fold_left max min_int labels in
  if hi - lo > 512 then fail "case label range too wide (%d..%d)" lo hi;
  let tmp = Layout.temp ctx.current "case-selector" in
  let tmp_place =
    { top = "fullword"; dsp = tmp; index = None; base = r13 ();
      stype = Layout.Sfull }
  in
  let ltable = fresh_label ctx in
  let lend = fresh_label ctx in
  let ldefault = fresh_label ctx in
  let arm_labels = List.map (fun arm -> (fresh_label ctx, arm)) arms in
  let label_for v =
    match
      List.find_opt (fun (_, (vals, _)) -> List.mem v vals) arm_labels
    with
    | Some (l, _) -> l
    | None -> ldefault
  in
  (* selector into its temp, range-routing to the default arm *)
  [ assign_tree tmp_place (gen_int ctx sel) ]
  @ [
      cond_branch ldefault 4 (node "icompare" [ load_place tmp_place; const_tree lo ]);
      cond_branch ldefault 2 (node "icompare" [ load_place tmp_place; const_tree hi ]);
    ]
  @ [
      node "case_index"
        [
          leaf_label ltable;
          node "isub" [ load_place tmp_place; const_tree lo ];
        ];
      label_def ltable;
    ]
  @ List.map
      (fun v -> node "label_index" [ leaf_label (label_for v) ])
      (List.init (hi - lo + 1) (fun i -> lo + i))
  @ List.concat_map
      (fun (l, (_, body)) ->
        (label_def l :: List.concat_map (gen_stmt ctx) body)
        @ [ uncond_branch lend ])
      arm_labels
  @ (label_def ldefault
     ::
     (match otherwise with
     | Some body -> List.concat_map (gen_stmt ctx) body
     | None -> [ node "abort_op" [ leaf_int "errno" 1 ] ]))
  @ [ label_def lend ]

and gen_write ctx (e : Ast.expr) : Tree.t list =
  let is_real = expr_type ctx e = Ast.Treal in
  let counter_disp = if is_real then ctx.wcount_r else ctx.wcount_i in
  let area = if is_real then ctx.out_real_disp else ctx.out_int_disp in
  let shift = if is_real then 3 else 2 in
  let counter =
    { top = "fullword"; dsp = counter_disp; index = None; base = r13 ();
      stype = Layout.Sfull }
  in
  let slot_index =
    node "l_shift" [ load_place counter; leaf_int "v" shift ]
  in
  let target =
    {
      top = (if is_real then "dblrealword" else "fullword");
      dsp = area;
      index = Some slot_index;
      base = r13 ();
      stype = (if is_real then Layout.Sdouble else Layout.Sfull);
    }
  in
  let value = if is_real then gen_real ctx e else gen_int ctx e in
  [
    assign_tree target value;
    assign_tree counter (node "incr" [ load_place counter ]);
  ]

(* -- whole programs ----------------------------------------------------------------- *)

type shaped = {
  trees : Tree.t list;
  main_frame : Layout.t;
  proc_frames : (string * Layout.t) list;
  proc_slots : (string * int * int) list;  (** name, PSA slot, entry label *)
  out_int_disp : int;
  out_real_disp : int;
  wcount_i_disp : int;
  wcount_r_disp : int;
  frame_bytes : int;
  n_labels : int;
}

(** Shape a checked program into IF trees (one list entry per statement-
    level construct, in program order). *)
let shape ?(checks = false) (c : Pascal.Sema.checked) : (shaped, error) result
    =
  try
    let prog = c.Pascal.Sema.prog in
    let main = Layout.of_decls prog.Ast.globals in
    (* hidden output machinery *)
    let wcount_i = Layout.temp main "write-count-int" in
    let wcount_r = Layout.temp main "write-count-real" in
    let out_int_disp = Layout.temp main ~size:(64 * 4) "out-int-area" in
    let out_real_disp = Layout.temp main ~size:(32 * 8) ~al:8 "out-real-area" in
    let proc_frames =
      List.map
        (fun (p : Ast.proc_decl) -> (p.Ast.p_name, Layout.of_decls p.Ast.p_locals))
        prog.Ast.procs
    in
    let ctx =
      {
        main;
        proc_frames;
        proc_slots = [];
        current = main;
        in_proc = false;
        next_label = 1;
        checks;
        out_int_disp;
        out_real_disp;
        wcount_i;
        wcount_r;
      }
    in
    (* assign procedure slots and entry labels up front so calls resolve *)
    let proc_slots =
      List.mapi
        (fun i (p : Ast.proc_decl) -> (p.Ast.p_name, i, ctx.next_label + i))
        prog.Ast.procs
    in
    ctx.next_label <- ctx.next_label + List.length prog.Ast.procs;
    let ctx = { ctx with proc_slots } in
    let main_trees =
      (leaf_op "procedure_entry" :: List.concat_map (gen_stmt ctx) prog.Ast.main)
      @ [ leaf_op "procedure_exit" ]
    in
    let proc_trees =
      List.concat_map
        (fun (p : Ast.proc_decl) ->
          let _, _, lbl =
            List.find (fun (n, _, _) -> n = p.Ast.p_name) proc_slots
          in
          ctx.current <- List.assoc p.Ast.p_name proc_frames;
          ctx.in_proc <- true;
          let body = List.concat_map (gen_stmt ctx) p.Ast.p_body in
          ctx.current <- main;
          ctx.in_proc <- false;
          (label_def lbl :: leaf_op "procedure_entry" :: body)
          @ [ leaf_op "procedure_exit" ])
        prog.Ast.procs
    in
    let frame_bytes =
      List.fold_left
        (fun acc (_, l) -> max acc (Layout.frame_bytes l))
        (Layout.frame_bytes main) proc_frames
    in
    Ok
      {
        trees = main_trees @ proc_trees;
        main_frame = main;
        proc_frames;
        proc_slots;
        out_int_disp;
        out_real_disp;
        wcount_i_disp = wcount_i;
        wcount_r_disp = wcount_r;
        frame_bytes;
        n_labels = ctx.next_label;
      }
  with
  | Fail e -> Error e
  | Layout.Frame_overflow m -> Error { msg = m }
