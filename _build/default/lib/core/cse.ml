(** The code generator's common-subexpression symbol table (paper
    section 4.4).

    Each CSE carries a unique number, a use count established by the IF
    optimizer, a shaper-allocated temporary (used only if the register
    copy must be given up) and its current residence. *)

type residence = In_reg of int | In_mem

type entry = {
  id : int;
  ty : Grammar.sym option;  (** IF type operator used to reload from memory *)
  fp : bool;
  temp_dsp : int;
  temp_base : int;
  mutable remaining : int;
  mutable residence : residence;
}

type t = { entries : (int, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 16 }

let define t ~id ~ty ~fp ~count ~reg ~temp_dsp ~temp_base =
  Hashtbl.replace t.entries id
    {
      id;
      ty;
      fp;
      temp_dsp;
      temp_base;
      remaining = count;
      residence = In_reg reg;
    }

let find t id = Hashtbl.find_opt t.entries id

(** The register lost its copy (eviction or [modifies]); subsequent uses
    reload from the temporary. *)
let to_memory t id =
  match find t id with
  | Some e -> e.residence <- In_mem
  | None -> ()

(** Record one use consumed. *)
let consume t id =
  match find t id with
  | Some e -> e.remaining <- max 0 (e.remaining - 1)
  | None -> ()

(** The CSE currently bound to register [r], if any. *)
let bound_to t r =
  Hashtbl.fold
    (fun _ e acc ->
      match e.residence with
      | In_reg r' when r' = r -> Some e
      | _ -> acc)
    t.entries None
