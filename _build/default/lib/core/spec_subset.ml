(** Grammar-size ablation support (paper section 6):

    "A language implementer can therefore control the size of the
    compiler by changing the complexity of the grammar.  This size change
    can be accomplished without losing the guarantee of generating
    correct code."

    [filter] derives reduced specifications from a full one by dropping
    redundant productions — the addressing-mode/operand-size variants
    that only exist to improve code quality.  Each level still generates
    correct code for programs within its reach. *)

type level =
  | Full  (** the specification as written *)
  | No_fused
      (** drop memory-operand arithmetic: one register-register
          production per operator, loads happen explicitly *)
  | Int_only
      (** additionally drop real, quad-real and set productions *)
  | Core
      (** additionally drop halfword/byte storage, checks, idioms:
          the smallest grammar that still compiles integer programs *)

let level_name = function
  | Full -> "full"
  | No_fused -> "no-fused"
  | Int_only -> "int-only"
  | Core -> "core"

let all_levels = [ Full; No_fused; Int_only; Core ]

let type_ops =
  [ "fullword"; "hlfword"; "byteword"; "realword"; "dblrealword"; "quadrealword" ]

let arith_heads =
  [
    "iadd"; "isub"; "imult"; "idiv"; "imod"; "icompare";
    "radd"; "rsub"; "rmult"; "rdiv"; "rcompare";
    "boolean_and"; "boolean_or"; "boolean_test";
  ]

let real_ops =
  [
    "realword"; "dblrealword"; "quadrealword"; "radd"; "rsub"; "rmult";
    "rdiv"; "rabs"; "rneg"; "rcompare"; "halve"; "rmin"; "rmax"; "qadd";
    "qsub"; "qmult"; "s_x_cnvrt"; "x_s_cnvrt"; "x_q_cnvrt"; "q_x_cnvrt";
  ]

let set_ops =
  [
    "test_bit_value"; "set_bit_value"; "clear_bit_value"; "set_union";
    "set_intersect"; "set_difference";
  ]

(* [incr] stays: the shaper's hidden write counters use it *)
let core_dropped =
  [
    "hlfword"; "byteword"; "imax"; "imin"; "iodd"; "iabs";
    "range_check"; "subscript_check"; "case_check"; "uninit_check";
    "long_assign"; "var_assign"; "name_param"; "clear"; "make_common";
    "use_common"; "boolean_not";
  ]

let head (p : Spec_ast.production) =
  match p.Spec_ast.p_rhs with
  | s :: _ -> s.Spec_ast.base
  | [] -> ""

let mentions (p : Spec_ast.production) names =
  List.exists (fun (s : Spec_ast.ssym) -> List.mem s.Spec_ast.base names)
    p.Spec_ast.p_rhs

(* a fused production: arithmetic head with a storage operand inline *)
let fused (p : Spec_ast.production) =
  List.mem (head p) arith_heads
  && List.exists
       (fun (s : Spec_ast.ssym) -> List.mem s.Spec_ast.base type_ops)
       (List.tl p.Spec_ast.p_rhs)

let keep (lvl : level) (p : Spec_ast.production) : bool =
  match lvl with
  | Full -> true
  | No_fused -> not (fused p)
  | Int_only -> (not (fused p)) && not (mentions p real_ops)
  | Core ->
      (not (fused p))
      && (not (mentions p real_ops))
      && (not (mentions p set_ops))
      && (not (mentions p core_dropped))
      && head p <> "icompare"
         (* keep only the register comparison *)
      || (head p = "icompare" && List.length p.Spec_ast.p_rhs = 3
         && not (fused p))

let filter (lvl : level) (spec : Spec_ast.t) : Spec_ast.t =
  { spec with Spec_ast.productions = List.filter (keep lvl) spec.Spec_ast.productions }

(** Build every level from a parsed specification. *)
let build_levels ?mode (spec : Spec_ast.t) :
    (level * (Tables.t, Cogg_build.error list) result) list =
  List.map (fun lvl -> (lvl, Cogg_build.build ?mode (filter lvl spec))) all_levels
