(** Parse-table compression.

    Two classical techniques, composable (the paper's "compressed" table,
    Table 2, notes its tables are "by no means minimally compressed"):

    - default reductions: the most common reduce action of a row becomes
      the row default, removing those entries from the row (error
      detection is delayed by at most a few reductions, never lost);
    - row-displacement ("comb") packing: the remaining sparse rows are
      overlaid into a single value array with a check array.

    Entry encoding (16-bit): 0 = error, 1 = accept, 2+2k = shift k,
    3+2k = reduce k. *)

type method_ = No_compression | Defaults_only | Comb_only | Defaults_and_comb

let encode_action : Parse_table.action -> int = function
  | Error -> 0
  | Accept -> 1
  | Shift s -> 2 + (2 * s)
  | Reduce p -> 3 + (2 * p)

let decode_action (v : int) : Parse_table.action =
  if v = 0 then Error
  else if v = 1 then Accept
  else if v mod 2 = 0 then Shift ((v - 2) / 2)
  else Reduce ((v - 3) / 2)

type t = {
  n_states : int;
  n_syms : int;
  method_ : method_;
  row_index : int array; (* state -> shared row id *)
  defaults : int array; (* per-row default entry (encoded) *)
  offsets : int array; (* per-row displacement into value/check *)
  value : int array;
  check : int array; (* owning row id + 1, 0 = free *)
  size_bytes : int;
}

(** Size in bytes of the uncompressed table: one 16-bit entry per
    (state, symbol) pair. *)
let uncompressed_bytes (pt : Parse_table.t) =
  Parse_table.n_states pt * Grammar.n_syms pt.Parse_table.grammar * 2

let row_default method_ (row : Parse_table.action array) : int =
  match method_ with
  | No_compression | Comb_only -> 0
  | Defaults_only | Defaults_and_comb ->
      (* most common reduce action in the row; shifts and errors are never
         defaulted (a defaulted shift would consume input wrongly) *)
      let counts = Hashtbl.create 8 in
      Array.iter
        (fun a ->
          match a with
          | Parse_table.Reduce _ ->
              let v = encode_action a in
              Hashtbl.replace counts v
                (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
          | _ -> ())
        row;
      Hashtbl.fold
        (fun v c (bv, bc) -> if c > bc then (v, c) else (bv, bc))
        counts (0, 0)
      |> fst

let compress ?(method_ = Defaults_and_comb) (pt : Parse_table.t) : t =
  let n_states = Parse_table.n_states pt in
  let n_syms = Grammar.n_syms pt.Parse_table.grammar in
  (* per-state (default, significant entries); identical rows share *)
  let state_rows =
    Array.init n_states (fun s ->
        let row = pt.Parse_table.actions.(s) in
        let d = row_default method_ row in
        let entries = ref [] in
        Array.iteri
          (fun sym a ->
            let v = encode_action a in
            if v <> d && v <> 0 then entries := (sym, v) :: !entries)
          row;
        (d, List.rev !entries))
  in
  (* row sharing: map distinct (default, entries) to a row id *)
  let row_ids : ((int * (int * int) list), int) Hashtbl.t = Hashtbl.create 64 in
  let row_index = Array.make n_states 0 in
  let distinct = ref [] in
  let n_rows = ref 0 in
  Array.iteri
    (fun s row ->
      match Hashtbl.find_opt row_ids row with
      | Some id -> row_index.(s) <- id
      | None ->
          let id = !n_rows in
          incr n_rows;
          Hashtbl.replace row_ids row id;
          distinct := row :: !distinct;
          row_index.(s) <- id)
    state_rows;
  let rows = Array.of_list (List.rev !distinct) in
  let defaults = Array.map fst rows in
  let entries_of = Array.map snd rows in
  match method_ with
  | No_compression | Defaults_only ->
      (* dense layout, one row per state (no sharing: the point of this
         method is the flat table the paper calls "uncompressed") *)
      let value = Array.make (n_states * n_syms) 0 in
      let check = Array.make (n_states * n_syms) 0 in
      let row_index = Array.init n_states Fun.id in
      let defaults = Array.map (fun (d, _) -> d) state_rows in
      Array.iteri
        (fun s (_, entries) ->
          List.iter
            (fun (sym, v) ->
              value.((s * n_syms) + sym) <- v;
              check.((s * n_syms) + sym) <- s + 1)
            entries)
        state_rows;
      let offsets = Array.init n_states (fun s -> s * n_syms) in
      let size_bytes =
        (* dense layout stores only the value array plus defaults *)
        (n_states * n_syms * 2)
        + match method_ with Defaults_only -> n_states * 2 | _ -> 0
      in
      { n_states; n_syms; method_; row_index; defaults; offsets; value; check;
        size_bytes }
  | Comb_only | Defaults_and_comb ->
      (* First-fit row displacement over the distinct rows, densest first.
         The check array stores the *column symbol* (one byte), which is
         sound because distinct rows always take distinct offsets: a
         position p can only satisfy check[p] = sym with p = offset + sym
         for the single row that owns it. *)
      let order = Array.init !n_rows (fun i -> i) in
      Array.sort
        (fun a b ->
          compare (List.length entries_of.(b)) (List.length entries_of.(a)))
        order;
      let cap = ref (max 64 (!n_rows * 4)) in
      let value = ref (Array.make !cap 0) in
      let check = ref (Array.make !cap 0) in
      let used = ref 0 in
      let taken = Hashtbl.create 64 in
      let ensure n =
        if n > !cap then begin
          let ncap = max n (!cap * 2) in
          let nv = Array.make ncap 0 and nc = Array.make ncap 0 in
          Array.blit !value 0 nv 0 !cap;
          Array.blit !check 0 nc 0 !cap;
          value := nv;
          check := nc;
          cap := ncap
        end
      in
      let offsets = Array.make !n_rows 0 in
      let empties = ref [] in
      Array.iter
        (fun rid ->
          let entries = entries_of.(rid) in
          if entries = [] then empties := rid :: !empties
          else begin
            let fits off =
              (not (Hashtbl.mem taken off))
              && List.for_all
                   (fun (sym, _) ->
                     let p = off + sym in
                     p >= 0 && (p >= !cap || !check.(p) = 0))
                   entries
            in
            let off = ref 0 in
            while not (fits !off) do
              incr off
            done;
            Hashtbl.replace taken !off ();
            offsets.(rid) <- !off;
            List.iter
              (fun (sym, v) ->
                let p = !off + sym in
                ensure (p + 1);
                !value.(p) <- v;
                !check.(p) <- sym + 1;
                if p + 1 > !used then used := p + 1)
              entries
          end)
        order;
      (* empty rows point past the packed area: every probe misses *)
      List.iter (fun rid -> offsets.(rid) <- !used) !empties;
      let value = Array.sub !value 0 !used in
      let check = Array.sub !check 0 !used in
      let size_bytes =
        (!used * 2) (* value: 16-bit actions *)
        + !used (* check: 8-bit symbol ids *)
        + (!n_rows * 2) (* offsets *)
        + (n_states * 2) (* state -> row mapping *)
        + match method_ with Defaults_and_comb -> !n_rows * 2 | _ -> 0
      in
      { n_states; n_syms; method_; row_index; defaults; offsets; value; check;
        size_bytes }

(** Table lookup through the compressed representation. *)
let lookup (c : t) ~(state : int) ~(sym : int) : Parse_table.action =
  let rid = c.row_index.(state) in
  let p = c.offsets.(rid) + sym in
  let v =
    match c.method_ with
    | Comb_only | Defaults_and_comb ->
        if p >= 0 && p < Array.length c.check && c.check.(p) = sym + 1 then
          c.value.(p)
        else c.defaults.(rid)
    | No_compression | Defaults_only ->
        if p >= 0 && p < Array.length c.check && c.check.(p) = state + 1 then
          c.value.(p)
        else c.defaults.(rid)
  in
  decode_action v

(** Check that a compressed table reproduces the original exactly, modulo
    default reductions replacing errors (which only delay error
    detection).  Returns the number of entries where an error was replaced
    by a default reduction. *)
let verify (c : t) (pt : Parse_table.t) : (int, string) result =
  let softened = ref 0 in
  let bad = ref None in
  Array.iteri
    (fun state row ->
      Array.iteri
        (fun sym a ->
          let got = lookup c ~state ~sym in
          if got <> a then
            match (a, got) with
            | Parse_table.Error, Parse_table.Reduce _ -> incr softened
            | _ ->
                if !bad = None then
                  bad := Some (Fmt.str "state %d sym %d mismatch" state sym))
        row)
    pt.Parse_table.actions;
  match !bad with Some m -> Error m | None -> Ok !softened
