(** Registry of the semantic operators understood by the code emission
    routine (paper section 4).  A specification may declare any subset in
    its [$Constants] section; using an identifier in template-opcode
    position requires it to be declared *and* known here — "such type
    checking is of utmost importance" (paper, footnote 2). *)

let all =
  [
    (* register allocation, section 4.1 — using/need are directives
       hoisted ahead of the template sequence, but they are declared in
       $Constants like every other semantic operator *)
    "using";
    "need";
    "modifies";
    (* addressing, section 4.2 *)
    "label_location";
    "label_pntr";
    "branch";
    "branch_indexed";
    "skip";
    "case_load";
    (* machine idioms and stack manipulation, section 4.3 *)
    "ignore_lhs";
    "push_odd";
    "push_even";
    "load_odd_addr";
    "load_odd_full";
    "load_odd_half";
    "load_odd_reg";
    "load_extended";
    "store_extended";
    "clear_extended";
    "ibm_length";
    (* common subexpressions, section 4.4 *)
    "full_common";
    "half_common";
    "byte_common";
    "real_common";
    "dreal_common";
    "find_common";
    "find_real_common";
    (* bookkeeping *)
    "stmt_record";
    "list_request";
    "abort";
  ]

let count = List.length all
let is_semantic name = List.mem (String.lowercase_ascii name) all

(** The IF type operator a CSE-definition operator corresponds to: when a
    common subexpression has been evicted to its temporary, [find_common]
    prefixes [<type-op> dsp base] to the input stream so the normal load
    productions reload it. *)
let common_type_operator = function
  | "full_common" -> Some "fullword"
  | "half_common" -> Some "halfword"
  | "byte_common" -> Some "byteword"
  | "real_common" -> Some "realword"
  | "dreal_common" -> Some "dblrealword"
  | _ -> None
