lib/core/lookahead.ml: Array Grammar Hashtbl List Lr0 Option Queue
