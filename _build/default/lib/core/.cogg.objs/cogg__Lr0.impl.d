lib/core/lr0.ml: Array Fmt Grammar Hashtbl List Queue
