lib/core/spec_parse.ml: Buffer Fmt List Spec_ast String
