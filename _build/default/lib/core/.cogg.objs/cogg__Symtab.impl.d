lib/core/symtab.ml: Fmt Hashtbl List Machine Semops Spec_ast String
