lib/core/loader_gen.ml: Array Bytes Code_buffer Fmt Hashtbl Int32 Machine
