lib/core/codegen.ml: Code_buffer Driver Emit Fmt Ifl Loader_gen Machine Regalloc Tables
