lib/core/emit.ml: Array Code_buffer Cse Fmt Grammar Hashtbl Ifl List Loader_gen Machine Option Regalloc Symtab Tables Template
