lib/core/cse.ml: Grammar Hashtbl
