lib/core/code_buffer.ml: Fmt List Machine
