lib/core/grammar.ml: Array Fmt Hashtbl Int List Set
