lib/core/semops.ml: List String
