lib/core/regalloc.mli: Symtab
