lib/core/tables_io.ml: Array Buffer Compress Float Fmt Grammar Hashtbl Int32 List Lookahead Lr0 Parse_table String Symtab Tables Template
