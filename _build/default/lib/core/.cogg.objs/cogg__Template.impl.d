lib/core/template.ml: Array Fmt Grammar Hashtbl List Machine Option Semops Spec_ast Symtab
