lib/core/tables.ml: Array Grammar Option Parse_table Regalloc Symtab Template
