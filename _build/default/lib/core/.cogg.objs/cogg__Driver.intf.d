lib/core/driver.mli: Format Ifl Tables
