lib/core/semops.mli:
