lib/core/codegen.mli: Driver Format Ifl Loader_gen Machine Regalloc Tables
