lib/core/parse_table.ml: Array Fmt Grammar List Lookahead Lr0
