lib/core/cogg_build.mli: Format Grammar Lookahead Spec_ast Symtab Tables
