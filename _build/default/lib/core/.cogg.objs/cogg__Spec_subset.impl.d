lib/core/spec_subset.ml: Cogg_build List Spec_ast Tables
