lib/core/code_buffer.mli: Format Machine
