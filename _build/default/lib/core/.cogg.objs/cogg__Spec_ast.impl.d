lib/core/spec_ast.ml: Fmt List
