lib/core/cse.mli: Grammar Hashtbl
