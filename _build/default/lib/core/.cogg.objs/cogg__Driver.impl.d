lib/core/driver.ml: Array Fmt Fun Grammar Ifl List Lr0 Parse_table String Symtab Tables
