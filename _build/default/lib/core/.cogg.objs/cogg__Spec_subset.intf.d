lib/core/spec_subset.mli: Cogg_build Lookahead Spec_ast Tables
