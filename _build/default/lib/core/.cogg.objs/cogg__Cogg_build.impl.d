lib/core/cogg_build.ml: Array Fmt Grammar List Lookahead Lr0 Option Parse_table Result Spec_ast Spec_parse Symtab Tables Template
