lib/core/compress.ml: Array Fmt Fun Grammar Hashtbl List Option Parse_table
