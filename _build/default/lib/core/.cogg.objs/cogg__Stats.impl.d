lib/core/stats.ml: Array Fmt Fun Grammar List Parse_table Spec_ast Symtab Tables
