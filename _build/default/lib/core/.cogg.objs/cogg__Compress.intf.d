lib/core/compress.mli: Parse_table
