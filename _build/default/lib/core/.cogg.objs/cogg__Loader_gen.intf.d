lib/core/loader_gen.mli: Bytes Code_buffer Machine
