lib/core/regalloc.ml: Array Fmt List Option Symtab
