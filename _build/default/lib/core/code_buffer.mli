(** The code buffer filled by the code emission routine.

    Most entries are finished machine instructions; branch and case-table
    sites stay symbolic ("while parsing the IF, label locations and
    branch instructions are kept in a dictionary", paper section 3)
    until the Loader Record Generator resolves them. *)

(** Labels: [User] labels come from the IF ([label_def lbl.n]);
    [Internal] labels are invented by the code emitter for [skip]
    targets, so the shaper never has to allocate them (paper 4.2). *)
type label = User of int | Internal of int

val pp_label : Format.formatter -> label -> unit

type item =
  | Fixed of Machine.Insn.t
  | Branch_site of { mask : int; lbl : label; idx : int; x : int }
      (** conditional branch to [lbl]; [idx] is the register reserved for
          the long form; [x] an optional extra index register (0 = none) *)
  | Case_site of { reg : int; lbl : label; idx : int }
      (** load of the branch-table word at [lbl] indexed by [reg] *)
  | Label_def of label
  | Word_lit of int  (** literal data word in the instruction stream *)
  | Word_label of label  (** data word holding a label's offset *)

type t

val create : unit -> t
val add : t -> item -> unit
val items : t -> item list
val length : t -> int

val n_instructions : t -> int
(** Count of machine instructions (sites count as one). *)

val pp_item : Format.formatter -> item -> unit

val pp : Format.formatter -> t -> unit
(** Assembly-style listing in the manner of the paper's Appendix 1. *)

val to_listing : t -> string
