(** LR(0) automaton construction.

    States are canonical sets of kernel items; closures are computed on
    demand.  Items are packed into ints: [(prod lsl DOT_BITS) lor dot]. *)

let dot_bits = 5
let max_rhs = (1 lsl dot_bits) - 1

type item = int

let item ~prod ~dot : item = (prod lsl dot_bits) lor dot
let item_prod (i : item) = i lsr dot_bits
let item_dot (i : item) = i land max_rhs

type state = {
  id : int;
  kernel : item array; (* sorted *)
  mutable closure : item array; (* kernel + nonkernel, sorted *)
  mutable transitions : (Grammar.sym * int) list; (* symbol -> state id *)
}

type t = {
  grammar : Grammar.t;
  states : state array;
  start : int;
}

let n_states t = Array.length t.states

let pp_item g ppf (i : item) =
  let p = Grammar.prod g (item_prod i) in
  let dot = item_dot i in
  Fmt.pf ppf "%s ::=" (Grammar.name g p.lhs);
  Array.iteri
    (fun k s ->
      if k = dot then Fmt.pf ppf " .";
      Fmt.pf ppf " %s" (Grammar.name g s))
    p.rhs;
  if dot = Array.length p.rhs then Fmt.pf ppf " ."

(** Closure of an item set: a dot before non-terminal N adds N's
    productions with the dot at the start. *)
let closure (g : Grammar.t) (kernel : item array) : item array =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let rec add i =
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.replace seen i ();
      acc := i :: !acc;
      let p = Grammar.prod g (item_prod i) in
      let dot = item_dot i in
      if dot < Array.length p.rhs then
        let s = p.rhs.(dot) in
        if g.Grammar.is_nonterminal.(s) then
          List.iter
            (fun pid -> add (item ~prod:pid ~dot:0))
            g.Grammar.by_lhs.(s)
    end
  in
  Array.iter add kernel;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a

let build (g : Grammar.t) : t =
  if
    Array.exists
      (fun (p : Grammar.prod) -> Array.length p.rhs > max_rhs)
      g.Grammar.prods
  then invalid_arg "Lr0.build: production RHS too long";
  let goal_prod =
    match g.Grammar.by_lhs.(g.Grammar.goal) with
    | [ p ] -> p
    | _ -> invalid_arg "Lr0.build: goal must have exactly one production"
  in
  let states = ref [] in
  let n = ref 0 in
  let index : (item array, int) Hashtbl.t = Hashtbl.create 256 in
  let worklist = Queue.create () in
  let get_state kernel =
    match Hashtbl.find_opt index kernel with
    | Some id -> id
    | None ->
        let id = !n in
        incr n;
        let st = { id; kernel; closure = [||]; transitions = [] } in
        Hashtbl.replace index kernel id;
        states := st :: !states;
        Queue.add st worklist;
        id
  in
  let start = get_state [| item ~prod:goal_prod ~dot:0 |] in
  while not (Queue.is_empty worklist) do
    let st = Queue.pop worklist in
    let cl = closure g st.kernel in
    st.closure <- cl;
    (* group advanceable items by the symbol after the dot *)
    let by_sym : (Grammar.sym, item list ref) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun i ->
        let p = Grammar.prod g (item_prod i) in
        let dot = item_dot i in
        if dot < Array.length p.rhs then begin
          let s = p.rhs.(dot) in
          let cell =
            match Hashtbl.find_opt by_sym s with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.replace by_sym s c;
                c
          in
          cell := item ~prod:(item_prod i) ~dot:(dot + 1) :: !cell
        end)
      cl;
    let trans =
      Hashtbl.fold
        (fun s cell acc ->
          let kernel = Array.of_list !cell in
          Array.sort compare kernel;
          (s, get_state kernel) :: acc)
        by_sym []
    in
    (* deterministic order for reproducible tables *)
    st.transitions <- List.sort compare trans
  done;
  let arr = Array.make !n (List.hd !states) in
  List.iter (fun st -> arr.(st.id) <- st) !states;
  { grammar = g; states = arr; start }

(** Final (reducible) items of a state's closure. *)
let reducible (g : Grammar.t) (st : state) : item list =
  Array.to_list st.closure
  |> List.filter (fun i ->
         let p = Grammar.prod g (item_prod i) in
         item_dot i = Array.length p.rhs)

let goto (st : state) (s : Grammar.sym) : int option =
  List.assoc_opt s st.transitions
