(** Context-free grammar over interned symbols.

    The grammar describes the capabilities of the intermediate form
    (paper section 1).  A peculiarity of the Graham-Glanville setting:
    non-terminals can appear literally in the input stream (dedicated
    registers such as the stack base arrive as [r] tokens), so every
    symbol is simultaneously a potential input token; [first] sets
    therefore include the non-terminal itself. *)

type sym = int

type prod = {
  id : int;
  lhs : sym;
  rhs : sym array;
  line : int;  (** source line in the specification, for diagnostics *)
}

type t = {
  names : string array;  (** symbol id -> name *)
  index : (string, sym) Hashtbl.t;
  is_nonterminal : bool array;  (** appears as an LHS / register class *)
  in_if : bool array;  (** can this symbol appear in the IF input stream? *)
  prods : prod array;
  by_lhs : int list array;  (** lhs sym -> production ids *)
  goal : sym;
  lambda : sym;
  stmts : sym;
  eof : sym;
}

let name g s = g.names.(s)
let sym g n = Hashtbl.find_opt g.index n
let n_syms g = Array.length g.names
let n_prods g = Array.length g.prods
let prod g i = g.prods.(i)

let pp_prod g ppf (p : prod) =
  Fmt.pf ppf "%s ::=%a" (name g p.lhs)
    (fun ppf rhs -> Array.iter (fun s -> Fmt.pf ppf " %s" (name g s)) rhs)
    p.rhs

let prod_to_string g p = Fmt.str "%a" (pp_prod g) p

(** Reserved internal symbol names used by the augmentation. *)
let goal_name = "%goal"
let stmts_name = "%stmts"
let eof_name = "%eof"
let lambda_name = "lambda"

type builder = {
  mutable b_names : string list; (* reversed *)
  b_index : (string, sym) Hashtbl.t;
  mutable b_count : int;
  mutable b_prods : (sym * sym array * int) list; (* reversed *)
  b_nonterminal : (sym, unit) Hashtbl.t;
  b_not_in_if : (sym, unit) Hashtbl.t;
}

let builder () =
  {
    b_names = [];
    b_index = Hashtbl.create 64;
    b_count = 0;
    b_prods = [];
    b_nonterminal = Hashtbl.create 16;
    b_not_in_if = Hashtbl.create 16;
  }

let intern b name =
  match Hashtbl.find_opt b.b_index name with
  | Some s -> s
  | None ->
      let s = b.b_count in
      b.b_count <- s + 1;
      b.b_names <- name :: b.b_names;
      Hashtbl.replace b.b_index name s;
      s

(** Declare [name] as a non-terminal (registers classes, lambda, ...). *)
let declare_nonterminal ?(in_if = true) b name =
  let s = intern b name in
  Hashtbl.replace b.b_nonterminal s ();
  if not in_if then Hashtbl.replace b.b_not_in_if s ();
  s

(** Declare a terminal or operator: a plain input symbol. *)
let declare_terminal b name = intern b name

let add_prod b ~lhs ~rhs ~line =
  b.b_prods <- (lhs, rhs, line) :: b.b_prods

(** Finalize: augments the grammar with
    [%goal ::= %stmts %eof], [%stmts ::= %stmts lambda] and [%stmts ::= ]
    so a linearized IF program (a sequence of statements) is one parse. *)
let finish b =
  let lambda =
    match Hashtbl.find_opt b.b_index lambda_name with
    | Some s -> s
    | None -> declare_nonterminal ~in_if:false b lambda_name
  in
  Hashtbl.replace b.b_nonterminal lambda ();
  Hashtbl.replace b.b_not_in_if lambda ();
  (* lambda is pushed back to the input on reduction, so it *does* occur
     in the stream the parser sees; it is excluded from the IF surface
     (the shaper never emits it) but the action table needs a column.
     We treat "in_if" as "emitted by the shaper" for statistics; lambda
     keeps its column regardless. *)
  let goal = declare_nonterminal ~in_if:false b goal_name in
  let stmts = declare_nonterminal ~in_if:false b stmts_name in
  let eof = intern b eof_name in
  Hashtbl.replace b.b_not_in_if eof ();
  (* user productions first (their ids are meaningful for templates),
     augmentation productions last *)
  let user = List.rev b.b_prods in
  let all =
    user
    @ [
        (goal, [| stmts; eof |], 0);
        (stmts, [| stmts; lambda |], 0);
        (stmts, [||], 0);
      ]
  in
  let names = Array.of_list (List.rev b.b_names) in
  let n = Array.length names in
  let is_nonterminal = Array.make n false in
  Hashtbl.iter (fun s () -> is_nonterminal.(s) <- true) b.b_nonterminal;
  let in_if = Array.make n true in
  Hashtbl.iter (fun s () -> in_if.(s) <- false) b.b_not_in_if;
  let prods =
    Array.of_list
      (List.mapi (fun id (lhs, rhs, line) -> { id; lhs; rhs; line }) all)
  in
  (* every LHS must be a non-terminal *)
  Array.iter
    (fun p ->
      if not is_nonterminal.(p.lhs) then
        invalid_arg
          (Fmt.str "Grammar.finish: LHS %s is not a non-terminal" names.(p.lhs)))
    prods;
  let by_lhs = Array.make n [] in
  Array.iter (fun p -> by_lhs.(p.lhs) <- p.id :: by_lhs.(p.lhs)) prods;
  Array.iteri (fun i l -> by_lhs.(i) <- List.rev l) by_lhs;
  {
    names;
    index = b.b_index;
    is_nonterminal;
    in_if;
    prods;
    by_lhs;
    goal;
    lambda;
    stmts;
    eof;
  }

(* -- FIRST sets ----------------------------------------------------------- *)

module Symset = Set.Make (Int)

type analysis = {
  first : Symset.t array;  (** FIRST(X), including X itself (see above) *)
  nullable : bool array;
  follow : Symset.t array;  (** FOLLOW over non-terminals *)
}

let first_of_seq (an : analysis) (seq : sym array) ~from : Symset.t * bool =
  (* FIRST of seq.[from..], and whether the suffix is nullable *)
  let rec go i acc =
    if i >= Array.length seq then (acc, true)
    else
      let s = seq.(i) in
      let acc = Symset.union acc an.first.(s) in
      if an.nullable.(s) then go (i + 1) acc else (acc, false)
  in
  go from Symset.empty

let analyze (g : t) : analysis =
  let n = n_syms g in
  let first = Array.init n (fun s -> Symset.singleton s) in
  (* Every symbol can appear literally in the input, hence the self-
     inclusion; non-terminals additionally derive their productions'
     first symbols. *)
  let nullable = Array.make n false in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        (* nullable *)
        let all_null = Array.for_all (fun s -> nullable.(s)) p.rhs in
        if all_null && not nullable.(p.lhs) then begin
          nullable.(p.lhs) <- true;
          changed := true
        end;
        (* first *)
        let rec add i =
          if i < Array.length p.rhs then begin
            let s = p.rhs.(i) in
            let before = first.(p.lhs) in
            first.(p.lhs) <- Symset.union before first.(s);
            if not (Symset.equal before first.(p.lhs)) then changed := true;
            if nullable.(s) then add (i + 1)
          end
        in
        add 0)
      g.prods
  done;
  (* FOLLOW *)
  let follow = Array.make n Symset.empty in
  follow.(g.goal) <- Symset.singleton g.eof;
  let an0 = { first; nullable; follow } in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        let m = Array.length p.rhs in
        for i = 0 to m - 1 do
          let s = p.rhs.(i) in
          if g.is_nonterminal.(s) then begin
            let fst_rest, rest_nullable = first_of_seq an0 p.rhs ~from:(i + 1) in
            let before = follow.(s) in
            let acc = Symset.union before fst_rest in
            let acc =
              if rest_nullable then Symset.union acc follow.(p.lhs) else acc
            in
            if not (Symset.equal before acc) then begin
              follow.(s) <- acc;
              changed := true
            end
          end
        done)
      g.prods
  done;
  { first; nullable; follow }
