(** The skeletal LR parser driving the generated code generator
    (paper section 3).

    The parser consumes the linearized IF.  On a reduction it calls the
    code emission routine, which returns the tokens to prefix back onto
    the input stream (normally the production's LHS bound to the result
    register; possibly a converted odd register or a CSE's location).
    Because non-terminal tokens are shifted like any others, no separate
    GOTO table exists.

    "If the specification of the code generator is correct, then the code
    generator cannot emit incorrect instruction sequences.  Instead it
    will stop and signal an error." — a [Parse_error] result carries the
    state and offending token. *)

type error = {
  position : int;  (** index of the offending token in the input *)
  state : int;
  token : Ifl.Token.t option;  (** [None] at end of input *)
  msg : string;
  expected : string list;  (** symbols with an action in the blocked state *)
}

let pp_error ppf e =
  Fmt.pf ppf "code generation blocked at token %d%a in state %d: %s"
    e.position
    (Fmt.option (fun ppf t -> Fmt.pf ppf " (%a)" Ifl.Token.pp t))
    e.token e.state e.msg;
  match e.expected with
  | [] -> ()
  | xs ->
      Fmt.pf ppf "@.expected one of: %s"
        (String.concat ", "
           (if List.length xs <= 12 then xs
            else List.filteri (fun i _ -> i < 12) xs @ [ "..." ]))

type outcome = {
  reductions : int;
  shifts : int;
  max_stack : int;
}

(** [parse tables ~reduce input] runs the table-driven parse.

    [reduce ~prod ~rhs ~remap] is the code emission routine: [rhs] holds
    the popped translation-stack tokens; [remap] lets the emitter rewrite
    register bindings on the live stack and pending input (needed when a
    [need] directive transfers a busy register); the returned tokens are
    prefixed to the input (first element consumed first). *)
let parse (tables : Tables.t)
    ~(reduce :
       prod:int ->
       rhs:Ifl.Token.t array ->
       remap:((Ifl.Token.t -> Ifl.Token.t) -> unit) ->
       Ifl.Token.t list) (input : Ifl.Token.t list) : (outcome, error) result =
  let g = tables.Tables.grammar in
  let pt = tables.Tables.parse in
  (* the translation/parse stack: (state, token) *)
  let stack = ref [ (pt.Parse_table.automaton.Lr0.start, Ifl.Token.op "%bottom") ] in
  let pending = ref (input @ [ Ifl.Token.op Grammar.eof_name ]) in
  let position = ref 0 in
  let shifts = ref 0 and reductions = ref 0 and max_stack = ref 1 in
  let remap f =
    stack := List.map (fun (s, t) -> (s, f t)) !stack;
    pending := List.map f !pending
  in
  let fail state token msg =
    let expected =
      List.filter
        (fun s ->
          Parse_table.action pt state s <> Parse_table.Error
          && g.Grammar.in_if.(s))
        (List.init (Grammar.n_syms g) Fun.id)
      |> List.map (Grammar.name g)
    in
    Error { position = !position; state; token; msg; expected }
  in
  let rec loop () =
    let state = fst (List.hd !stack) in
    match !pending with
    | [] -> fail state None "input exhausted without accept"
    | tok :: rest -> (
        match Grammar.sym g tok.Ifl.Token.sym with
        | None -> fail state (Some tok) "symbol is not part of the machine grammar"
        | Some sym -> (
            (* shaper convenience: integer-valued tokens are coerced to the
               kind the grammar symbol declares (register binding, label,
               CSE number, condition mask) *)
            let tok =
              match (Tables.class_of tables sym, tok.Ifl.Token.value) with
              | ( Some (Symtab.Gpr | Symtab.Pair | Symtab.Fpr | Symtab.Fpair),
                  Ifl.Value.Int n ) ->
                  { tok with Ifl.Token.value = Ifl.Value.Reg n }
              | _ -> (
                  match (Tables.kind_of tables sym, tok.Ifl.Token.value) with
                  | Some Symtab.Klabel, Ifl.Value.Int n ->
                      { tok with Ifl.Token.value = Ifl.Value.Label n }
                  | Some Symtab.Kcse, Ifl.Value.Int n ->
                      { tok with Ifl.Token.value = Ifl.Value.Cse n }
                  | Some Symtab.Kcond, Ifl.Value.Int n ->
                      { tok with Ifl.Token.value = Ifl.Value.Cond n }
                  | _ -> tok)
            in
            (* runtime type check: terminals must carry the declared value
               kind; register non-terminals must carry a register *)
            let kind_ok =
              match (Tables.kind_of tables sym, tok.Ifl.Token.value) with
              | Some Symtab.Kint, (Ifl.Value.Int _ | Ifl.Value.Unit) -> true
              | Some Symtab.Klabel, Ifl.Value.Label _ -> true
              | Some Symtab.Kcse, Ifl.Value.Cse _ -> true
              | Some Symtab.Kcond, Ifl.Value.Cond _ -> true
              | Some _, _ -> false
              | None, _ -> true
            in
            let class_ok =
              match (Tables.class_of tables sym, tok.Ifl.Token.value) with
              | Some (Symtab.Gpr | Symtab.Pair | Symtab.Fpr | Symtab.Fpair), Ifl.Value.Reg _
                -> true
              | Some (Symtab.Cc | Symtab.Noclass), _ -> true
              | Some _, _ -> false
              | None, _ -> true
            in
            if not kind_ok then
              fail state (Some tok) "token value does not match the terminal's declared kind"
            else if not class_ok then
              fail state (Some tok) "register non-terminal token without a register binding"
            else
              match Parse_table.action pt state sym with
              | Parse_table.Shift s' ->
                  stack := (s', tok) :: !stack;
                  pending := rest;
                  incr position;
                  incr shifts;
                  max_stack := max !max_stack (List.length !stack);
                  loop ()
              | Parse_table.Accept -> Ok { reductions = !reductions; shifts = !shifts; max_stack = !max_stack }
              | Parse_table.Error ->
                  fail state (Some tok) "no action (invalid IF for this machine grammar)"
              | Parse_table.Reduce p ->
                  incr reductions;
                  let prod = Grammar.prod g p in
                  let n = Array.length prod.Grammar.rhs in
                  let rhs = Array.make n (Ifl.Token.op "?") in
                  for i = n - 1 downto 0 do
                    match !stack with
                    | (_, t) :: tl ->
                        rhs.(i) <- t;
                        stack := tl
                    | [] -> assert false
                  done;
                  let prefixed =
                    if Tables.is_user_prod tables p then
                      reduce ~prod:p ~rhs ~remap
                    else
                      (* augmentation production: prefix the bare LHS *)
                      [ Ifl.Token.op (Grammar.name g prod.Grammar.lhs) ]
                  in
                  pending := prefixed @ !pending;
                  loop ()))
  in
  loop ()
