(** Registry of the semantic operators understood by the code emission
    routine (paper section 4).  A specification may declare any subset in
    its [$Constants] section; using an identifier in template-opcode
    position requires it to be declared {e and} known here — "such type
    checking is of utmost importance" (paper, footnote 2). *)

val all : string list
val count : int
val is_semantic : string -> bool

val common_type_operator : string -> string option
(** The IF type operator a CSE-definition operator corresponds to: when
    a common subexpression has been evicted to its temporary,
    [find_common] prefixes [<type-op> dsp base] to the input stream so
    the normal load productions reload it. *)
