(** Reduce lookahead computation: SLR(1) and LALR(1).

    SLR uses FOLLOW sets.  LALR lookaheads are computed with the
    spontaneous-generation / propagation algorithm (Dragon book 4.63)
    over the LR(0) automaton, using a sentinel lookahead [#]. *)

module Symset = Grammar.Symset

type mode = Slr | Lalr

let sentinel = -1

(* LR(1) closure over (item -> lookahead set), as a fixpoint. *)
let closure1 (g : Grammar.t) (an : Grammar.analysis)
    (init : (Lr0.item * Symset.t) list) : (Lr0.item, Symset.t) Hashtbl.t =
  let sets : (Lr0.item, Symset.t) Hashtbl.t = Hashtbl.create 32 in
  let work = Queue.create () in
  let add item la =
    let cur =
      Option.value (Hashtbl.find_opt sets item) ~default:Symset.empty
    in
    let merged = Symset.union cur la in
    if not (Symset.equal cur merged) then begin
      Hashtbl.replace sets item merged;
      Queue.add item work
    end
  in
  List.iter (fun (i, la) -> add i la) init;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    let la = Hashtbl.find sets i in
    let p = Grammar.prod g (Lr0.item_prod i) in
    let dot = Lr0.item_dot i in
    if dot < Array.length p.rhs then begin
      let b = p.rhs.(dot) in
      if g.Grammar.is_nonterminal.(b) then begin
        let fst, nullable = Grammar.first_of_seq an p.rhs ~from:(dot + 1) in
        let new_la = if nullable then Symset.union fst la else fst in
        List.iter
          (fun pid -> add (Lr0.item ~prod:pid ~dot:0) new_la)
          g.Grammar.by_lhs.(b)
      end
    end
  done;
  sets

(** LALR kernel lookaheads: (state, kernel item) -> lookahead set. *)
let lalr_kernel_lookaheads (a : Lr0.t) (an : Grammar.analysis) :
    (int * Lr0.item, Symset.t) Hashtbl.t =
  let g = a.Lr0.grammar in
  let la : (int * Lr0.item, Symset.t) Hashtbl.t = Hashtbl.create 256 in
  let links : (int * Lr0.item, (int * Lr0.item) list) Hashtbl.t =
    Hashtbl.create 256
  in
  let get key = Option.value (Hashtbl.find_opt la key) ~default:Symset.empty in
  let spontaneous = ref [] in
  (* discover spontaneous lookaheads and propagation links *)
  Array.iter
    (fun (st : Lr0.state) ->
      Array.iter
        (fun k ->
          let cl =
            closure1 g an [ (k, Symset.singleton sentinel) ]
          in
          Hashtbl.iter
            (fun i iset ->
              let p = Grammar.prod g (Lr0.item_prod i) in
              let dot = Lr0.item_dot i in
              if dot < Array.length p.rhs then begin
                let x = p.rhs.(dot) in
                match Lr0.goto st x with
                | None -> ()
                | Some s' ->
                    let adv = Lr0.item ~prod:(Lr0.item_prod i) ~dot:(dot + 1) in
                    let spont = Symset.remove sentinel iset in
                    if not (Symset.is_empty spont) then
                      spontaneous := ((s', adv), spont) :: !spontaneous;
                    if Symset.mem sentinel iset then
                      Hashtbl.replace links (st.id, k)
                        ((s', adv)
                        :: Option.value
                             (Hashtbl.find_opt links (st.id, k))
                             ~default:[])
              end)
            cl)
        st.kernel)
    a.Lr0.states;
  (* initial: goal item gets eof *)
  let goal_item = a.Lr0.states.(a.Lr0.start).kernel.(0) in
  Hashtbl.replace la (a.Lr0.start, goal_item) (Symset.singleton g.Grammar.eof);
  List.iter
    (fun (key, s) -> Hashtbl.replace la key (Symset.union (get key) s))
    !spontaneous;
  (* propagate to fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun src dsts ->
        let s = get src in
        if not (Symset.is_empty s) then
          List.iter
            (fun dst ->
              let cur = get dst in
              let merged = Symset.union cur s in
              if not (Symset.equal cur merged) then begin
                Hashtbl.replace la dst merged;
                changed := true
              end)
            dsts)
      links
  done;
  la

(** [reductions a an mode] returns, per state, the reducible productions
    with their lookahead sets. *)
let reductions (a : Lr0.t) (an : Grammar.analysis) (mode : mode) :
    (int * Symset.t) list array =
  let g = a.Lr0.grammar in
  match mode with
  | Slr ->
      Array.map
        (fun st ->
          Lr0.reducible g st
          |> List.map (fun i ->
                 let p = Lr0.item_prod i in
                 (p, an.Grammar.follow.((Grammar.prod g p).lhs)))
          |> List.sort_uniq compare)
        a.Lr0.states
  | Lalr ->
      let kla = lalr_kernel_lookaheads a an in
      Array.map
        (fun (st : Lr0.state) ->
          (* run the lookahead closure over the kernel with its final
             lookahead sets, then read off the final items *)
          let init =
            Array.to_list st.kernel
            |> List.map (fun k ->
                   ( k,
                     Option.value
                       (Hashtbl.find_opt kla (st.id, k))
                       ~default:Symset.empty ))
          in
          let cl = closure1 g an init in
          Hashtbl.fold
            (fun i iset acc ->
              let p = Grammar.prod g (Lr0.item_prod i) in
              if Lr0.item_dot i = Array.length p.rhs then
                (p.id, iset) :: acc
              else acc)
            cl []
          |> List.sort_uniq compare)
        a.Lr0.states
