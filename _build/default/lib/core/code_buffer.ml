(** The code buffer filled by the code emission routine.

    Most entries are finished machine instructions; branch and case-table
    sites stay symbolic ("while parsing the IF, label locations and branch
    instructions are kept in a dictionary", paper section 3) until the
    Loader Record Generator resolves them. *)

(** Labels: [User] labels come from the IF ([label_def lbl.n]); [Internal]
    labels are invented by the code emitter for [skip] targets, so the
    shaper never has to allocate them (paper section 4.2). *)
type label = User of int | Internal of int

let pp_label ppf = function
  | User n -> Fmt.pf ppf "L%d" n
  | Internal n -> Fmt.pf ppf ".%d" n

type item =
  | Fixed of Machine.Insn.t
  | Branch_site of { mask : int; lbl : label; idx : int; x : int }
      (** conditional branch to [lbl]; [idx] is the register reserved for
          the long form; [x] an optional extra index register (0 = none) *)
  | Case_site of { reg : int; lbl : label; idx : int }
      (** load of branch-table word at [lbl] indexed by [reg] *)
  | Label_def of label
  | Word_lit of int  (** literal data word in the instruction stream *)
  | Word_label of label  (** data word holding a label's offset *)

type t = { mutable items : item list (* reversed *); mutable n : int }

let create () = { items = []; n = 0 }

let add t item =
  t.items <- item :: t.items;
  t.n <- t.n + 1

let items t = List.rev t.items
let length t = t.n

(** Count of machine instructions (sites count as one). *)
let n_instructions t =
  List.fold_left
    (fun acc it ->
      match it with
      | Fixed _ | Branch_site _ | Case_site _ -> acc + 1
      | Label_def _ | Word_lit _ | Word_label _ -> acc)
    0 t.items

let pp_item ppf = function
  | Fixed i -> Fmt.pf ppf "      %a" Machine.Insn.pp i
  | Branch_site { mask; lbl; x; _ } ->
      if x = 0 then Fmt.pf ppf "      bc    %d,%a" mask pp_label lbl
      else Fmt.pf ppf "      bc    %d,%a(r%d)" mask pp_label lbl x
  | Case_site { reg; lbl; _ } ->
      Fmt.pf ppf "      l     r%d,%a(r%d)" reg pp_label lbl reg
  | Label_def l -> Fmt.pf ppf "%a:" pp_label l
  | Word_lit v -> Fmt.pf ppf "      dc    f'%d'" v
  | Word_label l -> Fmt.pf ppf "      dc    a(%a)" pp_label l

(** Assembly-style listing in the manner of the paper's Appendix 1. *)
let pp ppf t = Fmt.(vbox (list ~sep:cut pp_item)) ppf (items t)

let to_listing t = Fmt.str "%a" pp t
