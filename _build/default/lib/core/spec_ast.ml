(** Abstract syntax of the code-generator specification language.

    The surface syntax follows the paper's Appendix 2: a declaration
    section with five subsections ([$Non-terminals], [$Terminals],
    [$Operators], [$Opcodes], [$Constants]) followed by [$Productions].
    Productions are left-aligned; template lines "MUST skip column one";
    lines beginning with [*] are comments, and text after a template's
    operand field is a trailing comment. *)

(** An identifier occurrence, optionally indexed: [r.2], [dsp.1], [iadd]. *)
type ssym = { base : string; idx : int option }

let ssym ?idx base = { base; idx }

let pp_ssym ppf s =
  match s.idx with
  | None -> Fmt.string ppf s.base
  | Some i -> Fmt.pf ppf "%s.%d" s.base i

(** Atom of a template operand: a symbol reference or a numeric literal. *)
type atom = Asym of ssym | Anum of int

let pp_atom ppf = function
  | Asym s -> pp_ssym ppf s
  | Anum n -> Fmt.int ppf n

(** Template operand: [base], [base(sub)] or [base(sub,sub)] — e.g.
    [dsp.1(r.3,r.1)], [zero(lng.1,r.1)], [r.2]. *)
type operand = { o_base : atom; o_subs : atom list }

let pp_operand ppf o =
  match o.o_subs with
  | [] -> pp_atom ppf o.o_base
  | subs ->
      Fmt.pf ppf "%a(%a)" pp_atom o.o_base
        (Fmt.list ~sep:Fmt.comma pp_atom)
        subs

(** One template line: an opcode or semantic-operator name and its
    operands. *)
type template = { t_op : string; t_operands : operand list; t_line : int }

let pp_template ppf t =
  Fmt.pf ppf "%s %a" t.t_op (Fmt.list ~sep:Fmt.comma pp_operand) t.t_operands

(** One production with its associated template sequence. *)
type production = {
  p_lhs : ssym;
  p_rhs : ssym list;
  p_templates : template list;
  p_line : int;
}

let pp_production ppf p =
  Fmt.pf ppf "%a ::= %a" pp_ssym p.p_lhs
    (Fmt.list ~sep:Fmt.sp pp_ssym)
    p.p_rhs

(** A declaration: bare name, [name = kind] (classes / value kinds) or
    [name = number] (constants). *)
type decl = { d_name : string; d_value : dvalue; d_line : int }

and dvalue = Dnone | Dnum of int | Dkind of string

type t = {
  nonterminals : decl list;
  terminals : decl list;
  operators : decl list;
  opcodes : decl list;
  constants : decl list;
  productions : production list;
}

let n_templates t =
  List.fold_left (fun a p -> a + List.length p.p_templates) 0 t.productions

let n_declared t =
  List.length t.nonterminals + List.length t.terminals
  + List.length t.operators + List.length t.opcodes
  + List.length t.constants
