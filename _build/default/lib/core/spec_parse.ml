(** Line-oriented parser for the specification language (Appendix 2
    syntax).  All errors carry line numbers. *)

type error = { line : int; msg : string }

let pp_error ppf e = Fmt.pf ppf "spec:%d: %s" e.line e.msg

exception Fail of error

let fail line fmt = Fmt.kstr (fun msg -> raise (Fail { line; msg })) fmt

(* -- lexical helpers ------------------------------------------------------ *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '%'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* Split an operand field at top-level commas (commas inside parentheses
   separate sub-operands). *)
let split_operands line s =
  let out = ref [] and buf = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          if !depth < 0 then fail line "unbalanced ')' in operands";
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          out := Buffer.contents buf :: !out;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  if !depth <> 0 then fail line "unbalanced '(' in operands";
  out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out

let parse_atom line (s : string) : Spec_ast.atom =
  let s = String.trim s in
  if s = "" then fail line "empty operand atom"
  else if is_digit s.[0] || s.[0] = '-' then
    match int_of_string_opt s with
    | Some n -> Anum n
    | None -> fail line "malformed number %S" s
  else
    match String.index_opt s '.' with
    | None ->
        if not (String.for_all is_ident s) then
          fail line "malformed identifier %S" s;
        Asym (Spec_ast.ssym s)
    | Some i -> (
        let base = String.sub s 0 i in
        let idx = String.sub s (i + 1) (String.length s - i - 1) in
        if base = "" || not (String.for_all is_ident base) then
          fail line "malformed identifier %S" s;
        match int_of_string_opt idx with
        | Some n when n >= 0 -> Asym (Spec_ast.ssym ~idx:n base)
        | _ -> fail line "malformed index in %S" s)

let parse_operand line (s : string) : Spec_ast.operand =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> { o_base = parse_atom line s; o_subs = [] }
  | Some i ->
      if s.[String.length s - 1] <> ')' then
        fail line "operand %S: expected closing ')'" s;
      let base = String.sub s 0 i in
      let inner = String.sub s (i + 1) (String.length s - i - 2) in
      let subs =
        String.split_on_char ',' inner |> List.map (parse_atom line)
      in
      if List.length subs > 2 then
        fail line "operand %S: at most two sub-operands" s;
      { o_base = parse_atom line base; o_subs = subs }

let parse_ssym line (s : string) : Spec_ast.ssym =
  match parse_atom line s with
  | Asym x -> x
  | Anum _ -> fail line "expected a symbol, got number %S" s

(* split a line into whitespace-separated words *)
let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

(* -- sections ------------------------------------------------------------- *)

type section =
  | Options
  | Nonterminals
  | Terminals
  | Operators
  | Opcodes
  | Constants
  | Productions

let section_of_header line (s : string) =
  let l = String.lowercase_ascii s in
  let has p =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  if has "$options" then Options
  else if has "$non-terminals" || has "$nonterminals" then Nonterminals
  else if has "$terminals" then Terminals
  else if has "$operators" then Operators
  else if has "$opcodes" then Opcodes
  else if has "$constants" then Constants
  else if has "$productions" then Productions
  else fail line "unknown section header %S" s

(* -- declarations ---------------------------------------------------------- *)

(* Declarations are comma/semicolon separated [name], [name = word] or
   [name = number] entries, possibly spanning many lines. *)
let parse_decl_entry lineno (s : string) : Spec_ast.decl option =
  let s = String.trim s in
  if s = "" then None
  else
    match String.index_opt s '=' with
    | None ->
        if not (String.for_all is_ident s) then
          fail lineno "malformed declaration %S" s;
        Some { d_name = s; d_value = Dnone; d_line = lineno }
    | Some i ->
        let name = String.trim (String.sub s 0 i) in
        let v = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
        if name = "" || not (String.for_all is_ident name) then
          fail lineno "malformed declaration name %S" s;
        if v = "" then fail lineno "missing value in declaration %S" s;
        let dv =
          if is_digit v.[0] || v.[0] = '-' then
            match int_of_string_opt v with
            | Some n -> Spec_ast.Dnum n
            | None -> fail lineno "malformed number %S" v
          else if String.for_all is_ident v then Spec_ast.Dkind v
          else fail lineno "malformed declaration value %S" v
        in
        Some { d_name = name; d_value = dv; d_line = lineno }

(* -- main ------------------------------------------------------------------ *)

type state = {
  mutable sect : section;
  mutable nonterminals : Spec_ast.decl list;
  mutable terminals : Spec_ast.decl list;
  mutable operators : Spec_ast.decl list;
  mutable opcodes : Spec_ast.decl list;
  mutable constants : Spec_ast.decl list;
  mutable productions : Spec_ast.production list; (* reversed *)
  mutable current : Spec_ast.production option;
}

let flush_current st =
  match st.current with
  | None -> ()
  | Some p ->
      st.productions <-
        { p with p_templates = List.rev p.p_templates } :: st.productions;
      st.current <- None

let add_decls st lineno (body : string) =
  let entries =
    String.split_on_char ',' body
    |> List.concat_map (String.split_on_char ';')
    |> List.filter_map (parse_decl_entry lineno)
  in
  match st.sect with
  | Nonterminals -> st.nonterminals <- st.nonterminals @ entries
  | Terminals -> st.terminals <- st.terminals @ entries
  | Operators -> st.operators <- st.operators @ entries
  | Opcodes -> st.opcodes <- st.opcodes @ entries
  | Constants -> st.constants <- st.constants @ entries
  | Options -> ()
  | Productions -> fail lineno "declaration outside a declaration section"

let parse_production_header st lineno (line : string) =
  flush_current st;
  match String.index_opt line ':' with
  | Some i
    when i + 2 < String.length line
         && line.[i + 1] = ':'
         && line.[i + 2] = '=' ->
      let lhs_s = String.trim (String.sub line 0 i) in
      let rhs_s = String.sub line (i + 3) (String.length line - i - 3) in
      let lhs = parse_ssym lineno lhs_s in
      let rhs = List.map (parse_ssym lineno) (words rhs_s) in
      if rhs = [] then fail lineno "empty production right-hand side";
      st.current <-
        Some { p_lhs = lhs; p_rhs = rhs; p_templates = []; p_line = lineno }
  | _ -> fail lineno "expected '::=' in production %S" line

let parse_template st lineno (line : string) =
  match st.current with
  | None -> fail lineno "template before any production"
  | Some p -> (
      match words line with
      | [] -> ()
      | op :: rest ->
          if not (String.for_all is_ident op) then
            fail lineno "malformed template opcode %S" op;
          let op = String.lowercase_ascii op in
          let operands =
            match rest with
            | [] -> []
            | field :: _comment ->
                (* the operand field is the single word after the opcode;
                   anything later on the line is commentary *)
                if is_ident_start field.[0] || is_digit field.[0]
                   || field.[0] = '-'
                then
                  split_operands lineno field
                  |> List.map (parse_operand lineno)
                else []
          in
          let t = { Spec_ast.t_op = op; t_operands = operands; t_line = lineno } in
          st.current <- Some { p with p_templates = t :: p.p_templates })

let of_string (text : string) : (Spec_ast.t, error) result =
  let st =
    {
      sect = Options;
      nonterminals = [];
      terminals = [];
      operators = [];
      opcodes = [];
      constants = [];
      productions = [];
      current = None;
    }
  in
  try
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line =
          (* strip trailing CR and trailing spaces *)
          let l = String.length raw in
          let l = if l > 0 && raw.[l - 1] = '\r' then l - 1 else l in
          String.sub raw 0 l
        in
        let trimmed = String.trim line in
        if trimmed = "" then ()
        else if trimmed.[0] = '*' then ()
        else if trimmed.[0] = '$' then begin
          flush_current st;
          st.sect <- section_of_header lineno trimmed
        end
        else
          match st.sect with
          | Options -> ()
          | Productions ->
              if line.[0] = ' ' || line.[0] = '\t' then
                parse_template st lineno trimmed
              else parse_production_header st lineno trimmed
          | _ -> add_decls st lineno trimmed)
      lines;
    flush_current st;
    Ok
      {
        Spec_ast.nonterminals = st.nonterminals;
        terminals = st.terminals;
        operators = st.operators;
        opcodes = st.opcodes;
        constants = st.constants;
        productions = List.rev st.productions;
      }
  with Fail e -> Error e

let of_file (path : string) : (Spec_ast.t, error) result =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
