(** The code generator's common-subexpression symbol table (paper 4.4).

    Each CSE carries a unique number, a use count established by the IF
    optimizer, a shaper-allocated temporary (used only if the register
    copy must be given up) and its current residence. *)

type residence = In_reg of int | In_mem

type entry = {
  id : int;
  ty : Grammar.sym option;  (** IF type operator used to reload from memory *)
  fp : bool;
  temp_dsp : int;
  temp_base : int;
  mutable remaining : int;
  mutable residence : residence;
}

type t = { entries : (int, entry) Hashtbl.t }

val create : unit -> t

val define :
  t ->
  id:int ->
  ty:Grammar.sym option ->
  fp:bool ->
  count:int ->
  reg:int ->
  temp_dsp:int ->
  temp_base:int ->
  unit

val find : t -> int -> entry option

val to_memory : t -> int -> unit
(** The register lost its copy (eviction or [modifies]); subsequent uses
    reload from the temporary. *)

val consume : t -> int -> unit
(** Record one use consumed. *)

val bound_to : t -> int -> entry option
(** The CSE currently residing in register [r], if any. *)
