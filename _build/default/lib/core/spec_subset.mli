(** Grammar-size ablation support (paper section 6):

    "A language implementer can therefore control the size of the
    compiler by changing the complexity of the grammar.  This size
    change can be accomplished without losing the guarantee of
    generating correct code."

    {!filter} derives reduced specifications from a full one by dropping
    redundant productions — the addressing-mode/operand-size variants
    that only exist to improve code quality. *)

type level =
  | Full  (** the specification as written *)
  | No_fused
      (** drop memory-operand arithmetic: one register-register
          production per operator, loads happen explicitly *)
  | Int_only  (** additionally drop real, quad-real and set productions *)
  | Core
      (** additionally drop halfword/byte storage, checks and idioms:
          the smallest grammar that still compiles integer programs *)

val level_name : level -> string
val all_levels : level list

val keep : level -> Spec_ast.production -> bool
val filter : level -> Spec_ast.t -> Spec_ast.t

val build_levels :
  ?mode:Lookahead.mode ->
  Spec_ast.t ->
  (level * (Tables.t, Cogg_build.error list) result) list
(** Build every level from a parsed specification. *)
