(** The measurements behind the paper's Table 1. *)

type table1 = {
  symbols_declared : int;  (** i.   Number of symbols declared *)
  x_dimension : int;  (** ii.  X dimension of parse table *)
  states : int;  (** iii. States in parsing automaton *)
  entries : int;  (** iv.  Parse table entries *)
  significant : int;  (** v.   Significant (non-error) entries *)
  productions : int;  (** vi.  Productions *)
  templates : int;  (** vii. SDT templates *)
  production_operators : int;  (** viii. Operators usable in productions *)
  semantic_operators : int;  (** ix.  Semantic operators *)
}

(** The paper's reported values, for side-by-side comparison. *)
let paper_table1 =
  {
    symbols_declared = 247;
    x_dimension = 87;
    states = 810;
    entries = 70470;
    significant = 30366;
    productions = 248;
    templates = 578;
    production_operators = 68;
    semantic_operators = 28;
  }

(** Compute Table 1 for a built code generator.  [spec] supplies the
    template count (templates live in the specification, not the
    grammar). *)
let table1 (spec : Spec_ast.t) (t : Tables.t) : table1 =
  let g = t.Tables.grammar in
  let st = t.Tables.symtab in
  (* the X dimension counts the symbols that can be encountered in the IF
     during a parse: terminals, operators and the register non-terminals
     (paper section 5, entry ii) *)
  let x_cols =
    List.filter
      (fun s -> g.Grammar.in_if.(s))
      (List.init (Grammar.n_syms g) Fun.id)
  in
  let states = Parse_table.n_states t.Tables.parse in
  {
    symbols_declared = Symtab.n_declared st;
    x_dimension = List.length x_cols;
    states;
    entries = states * List.length x_cols;
    significant =
      Parse_table.significant_entries ~cols:(Some x_cols) t.Tables.parse;
    productions = t.Tables.n_user_prods;
    templates = Spec_ast.n_templates spec;
    production_operators = List.length st.Symtab.operators;
    semantic_operators = List.length st.Symtab.semantics;
  }

let pp_table1_row ppf (label, paper, ours) =
  Fmt.pf ppf "%-32s %10d %10d" label paper ours

let pp_table1 ppf (ours : table1) =
  let p = paper_table1 in
  Fmt.pf ppf "%-32s %10s %10s@." "Table 1" "paper" "measured";
  List.iter
    (fun row -> Fmt.pf ppf "%a@." pp_table1_row row)
    [
      ("i.   Number of symbols declared", p.symbols_declared, ours.symbols_declared);
      ("ii.  X dimension of parse table", p.x_dimension, ours.x_dimension);
      ("iii. States in parsing automaton", p.states, ours.states);
      ("iv.  Parse table entries", p.entries, ours.entries);
      ("v.   Significant entries", p.significant, ours.significant);
      ("vi.  Productions", p.productions, ours.productions);
      ("vii. SDT templates", p.templates, ours.templates);
      ("viii.Production operators", p.production_operators, ours.production_operators);
      ("ix.  Semantic operators", p.semantic_operators, ours.semantic_operators);
    ]
