lib/pascal/lexer.ml: Fmt List String
