lib/pascal/parser.ml: Ast Fmt Lexer List
