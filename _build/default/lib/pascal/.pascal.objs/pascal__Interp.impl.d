lib/pascal/interp.ml: Array Ast Char Float Fmt Hashtbl List Option Sema
