lib/pascal/sema.ml: Ast Fmt Hashtbl List Option Parser
