lib/pascal/ast.ml: Fmt
