(** Abstract syntax of the mini-Pascal front end.

    The subset covers what the paper's evaluation exercises: integer,
    boolean, char and real arithmetic, subrange (halfword) storage,
    arrays, sets (via [include]/[exclude]/[in]), the full statement
    repertoire (assignment, if, while, repeat, for, case, procedure
    calls) and the built-in functions that map onto machine idioms
    (abs, odd, min, max, trunc, ...). *)

type ty =
  | Tint
  | Tbool
  | Tchar
  | Treal
  | Tsub of int * int  (** subrange; stored as a halfword when it fits *)
  | Tarray of { lo : int; hi : int; elem : ty }
  | Tset of int  (** [set of 0..n] *)

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "integer"
  | Tbool -> Fmt.string ppf "boolean"
  | Tchar -> Fmt.string ppf "char"
  | Treal -> Fmt.string ppf "real"
  | Tsub (a, b) -> Fmt.pf ppf "%d..%d" a b
  | Tarray { lo; hi; elem } -> Fmt.pf ppf "array[%d..%d] of %a" lo hi pp_ty elem
  | Tset n -> Fmt.pf ppf "set of 0..%d" n

(** The scalar type used for expression typing (arrays decay to their
    element type on indexing; subranges behave as integers). *)
let rec scalar = function
  | Tsub _ -> Tint
  | Tarray { elem; _ } -> scalar elem
  | t -> t

type binop =
  | Add | Sub | Mul | Div (* integer div *) | Mod
  | RDiv (* real / *)
  | And | Or
  | Lt | Le | Gt | Ge | Eq | Ne
  | In  (** set membership *)

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Mod -> "mod"
  | RDiv -> "/" | And -> "and" | Or -> "or"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "=" | Ne -> "<>"
  | In -> "in"

type unop = Neg | Not

type expr =
  | Eint of int
  | Ereal of float
  | Ebool of bool
  | Echar of char
  | Evar of string
  | Eindex of string * expr
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Ecall of string * expr list  (** built-in functions only *)

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Sassign of lvalue * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Srepeat of stmt list * expr
  | Sfor of { var : string; from_ : expr; downto_ : bool; to_ : expr; body : stmt list }
  | Scase of expr * (int list * stmt list) list * stmt list option
  | Scall of string * expr list
      (** user procedures (no arguments) and built-in procedures
          ([include], [exclude], [write]) *)
  | Sblock of stmt list
  | Sempty

type var_decl = { v_name : string; v_ty : ty }

type proc_decl = { p_name : string; p_locals : var_decl list; p_body : stmt list }

type program = {
  prog_name : string;
  globals : var_decl list;
  procs : proc_decl list;
  main : stmt list;
}

(** Built-in functions with their argument counts. *)
let builtins =
  [ ("abs", 1); ("odd", 1); ("sqr", 1); ("trunc", 1); ("ord", 1);
    ("chr", 1); ("succ", 1); ("pred", 1); ("min", 2); ("max", 2) ]

let builtin_procs = [ ("include", 2); ("exclude", 2); ("write", 1) ]
