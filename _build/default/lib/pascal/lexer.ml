(** Hand-written lexer for mini-Pascal. *)

type token =
  | Ident of string
  | Int of int
  | Real of float
  | Char of char
  | Kw of string (* lower-cased keyword *)
  | Sym of string (* := <= >= <> .. and single-char symbols *)
  | Eof

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %s" s
  | Int n -> Fmt.pf ppf "integer %d" n
  | Real f -> Fmt.pf ppf "real %g" f
  | Char c -> Fmt.pf ppf "char %C" c
  | Kw k -> Fmt.pf ppf "keyword %s" k
  | Sym s -> Fmt.pf ppf "%S" s
  | Eof -> Fmt.string ppf "end of file"

let keywords =
  [ "program"; "var"; "begin"; "end"; "if"; "then"; "else"; "while"; "do";
    "repeat"; "until"; "for"; "to"; "downto"; "case"; "of"; "otherwise";
    "procedure"; "array"; "set"; "integer"; "boolean"; "char"; "real";
    "div"; "mod"; "and"; "or"; "not"; "true"; "false"; "in" ]

type error = { pos : int; line : int; msg : string }

let pp_error ppf e = Fmt.pf ppf "pascal:%d: %s" e.line e.msg

exception Fail of error

(** Tokenize; returns tokens paired with their line numbers. *)
let tokenize (src : string) : ((token * int) list, error) result =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let fail pos msg = raise (Fail { pos; line = !line; msg }) in
  let is_digit c = c >= '0' && c <= '9' in
  let is_alpha c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let i = ref 0 in
  (try
     while !i < n do
       let c = src.[!i] in
       if c = '\n' then begin incr line; incr i end
       else if c = ' ' || c = '\t' || c = '\r' then incr i
       else if c = '{' then begin
         (* comment *)
         while !i < n && src.[!i] <> '}' do
           if src.[!i] = '\n' then incr line;
           incr i
         done;
         if !i >= n then fail !i "unterminated comment";
         incr i
       end
       else if is_alpha c then begin
         let start = !i in
         while !i < n && (is_alpha src.[!i] || is_digit src.[!i]) do incr i done;
         let word = String.lowercase_ascii (String.sub src start (!i - start)) in
         if List.mem word keywords then out := (Kw word, !line) :: !out
         else out := (Ident word, !line) :: !out
       end
       else if is_digit c then begin
         let start = !i in
         while !i < n && is_digit src.[!i] do incr i done;
         (* a real requires digit '.' digit — but '..' is a range *)
         if
           !i + 1 < n
           && src.[!i] = '.'
           && is_digit src.[!i + 1]
         then begin
           incr i;
           while !i < n && is_digit src.[!i] do incr i done;
           let text = String.sub src start (!i - start) in
           match float_of_string_opt text with
           | Some f -> out := (Real f, !line) :: !out
           | None -> fail start ("malformed real " ^ text)
         end
         else
           let text = String.sub src start (!i - start) in
           match int_of_string_opt text with
           | Some v -> out := (Int v, !line) :: !out
           | None -> fail start ("malformed integer " ^ text)
       end
       else if c = '\'' then begin
         if !i + 2 < n && src.[!i + 2] = '\'' then begin
           out := (Char src.[!i + 1], !line) :: !out;
           i := !i + 3
         end
         else fail !i "malformed character literal"
       end
       else begin
         let two =
           if !i + 1 < n then String.sub src !i 2 else String.make 1 c
         in
         match two with
         | ":=" | "<=" | ">=" | "<>" | ".." ->
             out := (Sym two, !line) :: !out;
             i := !i + 2
         | _ -> (
             match c with
             | '+' | '-' | '*' | '/' | '(' | ')' | '[' | ']' | ';' | ':'
             | ',' | '.' | '=' | '<' | '>' ->
                 out := (Sym (String.make 1 c), !line) :: !out;
                 incr i
             | _ -> fail !i (Fmt.str "unexpected character %C" c))
       end
     done;
     out := (Eof, !line) :: !out;
     Ok (List.rev !out)
   with Fail e -> Error e)
