(** Recursive-descent parser for mini-Pascal. *)

type error = { line : int; msg : string }

let pp_error ppf e = Fmt.pf ppf "pascal:%d: %s" e.line e.msg

exception Fail of error

type state = { mutable toks : (Lexer.token * int) list }

let fail_at line fmt = Fmt.kstr (fun msg -> raise (Fail { line; msg })) fmt

let peek st =
  match st.toks with (t, _) :: _ -> t | [] -> Lexer.Eof

let line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st fmt = fail_at (line st) fmt

let expect_sym st s =
  match peek st with
  | Lexer.Sym s' when s = s' -> advance st
  | t -> fail st "expected %S, found %a" s Lexer.pp_token t

let expect_kw st k =
  match peek st with
  | Lexer.Kw k' when k = k' -> advance st
  | t -> fail st "expected %s, found %a" k Lexer.pp_token t

let expect_ident st =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | t -> fail st "expected an identifier, found %a" Lexer.pp_token t

let expect_int st =
  match peek st with
  | Lexer.Int v ->
      advance st;
      v
  | Lexer.Sym "-" -> (
      advance st;
      match peek st with
      | Lexer.Int v ->
          advance st;
          -v
      | t -> fail st "expected an integer, found %a" Lexer.pp_token t)
  | t -> fail st "expected an integer, found %a" Lexer.pp_token t

(* -- types ------------------------------------------------------------------ *)

let rec parse_type st : Ast.ty =
  match peek st with
  | Lexer.Kw "integer" -> advance st; Ast.Tint
  | Lexer.Kw "boolean" -> advance st; Ast.Tbool
  | Lexer.Kw "char" -> advance st; Ast.Tchar
  | Lexer.Kw "real" -> advance st; Ast.Treal
  | Lexer.Kw "array" ->
      advance st;
      expect_sym st "[";
      let lo = expect_int st in
      expect_sym st "..";
      let hi = expect_int st in
      expect_sym st "]";
      expect_kw st "of";
      let elem = parse_type st in
      if hi < lo then fail st "empty array range %d..%d" lo hi;
      Ast.Tarray { lo; hi; elem }
  | Lexer.Kw "set" ->
      advance st;
      expect_kw st "of";
      let lo = expect_int st in
      expect_sym st "..";
      let hi = expect_int st in
      if lo <> 0 then fail st "sets must start at 0";
      if hi < 0 || hi > 255 then fail st "set range too large";
      Ast.Tset hi
  | Lexer.Int _ | Lexer.Sym "-" ->
      let lo = expect_int st in
      expect_sym st "..";
      let hi = expect_int st in
      if hi < lo then fail st "empty subrange %d..%d" lo hi;
      Ast.Tsub (lo, hi)
  | t -> fail st "expected a type, found %a" Lexer.pp_token t

let parse_var_section st : Ast.var_decl list =
  if peek st <> Lexer.Kw "var" then []
  else begin
    advance st;
    let decls = ref [] in
    let rec entries () =
      match peek st with
      | Lexer.Ident _ ->
          let names = ref [ expect_ident st ] in
          while peek st = Lexer.Sym "," do
            advance st;
            names := expect_ident st :: !names
          done;
          expect_sym st ":";
          let ty = parse_type st in
          List.iter
            (fun v_name -> decls := { Ast.v_name; v_ty = ty } :: !decls)
            (List.rev !names);
          expect_sym st ";";
          entries ()
      | _ -> ()
    in
    entries ();
    List.rev !decls
  end

(* -- expressions ------------------------------------------------------------- *)

let rec parse_expr st : Ast.expr =
  let left = parse_simple st in
  match peek st with
  | Lexer.Sym "<" -> advance st; Ast.Ebin (Ast.Lt, left, parse_simple st)
  | Lexer.Sym "<=" -> advance st; Ast.Ebin (Ast.Le, left, parse_simple st)
  | Lexer.Sym ">" -> advance st; Ast.Ebin (Ast.Gt, left, parse_simple st)
  | Lexer.Sym ">=" -> advance st; Ast.Ebin (Ast.Ge, left, parse_simple st)
  | Lexer.Sym "=" -> advance st; Ast.Ebin (Ast.Eq, left, parse_simple st)
  | Lexer.Sym "<>" -> advance st; Ast.Ebin (Ast.Ne, left, parse_simple st)
  | Lexer.Kw "in" -> advance st; Ast.Ebin (Ast.In, left, parse_simple st)
  | _ -> left

and parse_simple st : Ast.expr =
  let first =
    match peek st with
    | Lexer.Sym "-" ->
        advance st;
        let t = parse_term st in
        (match t with
        | Ast.Eint n -> Ast.Eint (-n)
        | Ast.Ereal f -> Ast.Ereal (-.f)
        | t -> Ast.Eun (Ast.Neg, t))
    | Lexer.Sym "+" ->
        advance st;
        parse_term st
    | _ -> parse_term st
  in
  let rec more acc =
    match peek st with
    | Lexer.Sym "+" -> advance st; more (Ast.Ebin (Ast.Add, acc, parse_term st))
    | Lexer.Sym "-" -> advance st; more (Ast.Ebin (Ast.Sub, acc, parse_term st))
    | Lexer.Kw "or" -> advance st; more (Ast.Ebin (Ast.Or, acc, parse_term st))
    | _ -> acc
  in
  more first

and parse_term st : Ast.expr =
  let first = parse_factor st in
  let rec more acc =
    match peek st with
    | Lexer.Sym "*" -> advance st; more (Ast.Ebin (Ast.Mul, acc, parse_factor st))
    | Lexer.Sym "/" -> advance st; more (Ast.Ebin (Ast.RDiv, acc, parse_factor st))
    | Lexer.Kw "div" -> advance st; more (Ast.Ebin (Ast.Div, acc, parse_factor st))
    | Lexer.Kw "mod" -> advance st; more (Ast.Ebin (Ast.Mod, acc, parse_factor st))
    | Lexer.Kw "and" -> advance st; more (Ast.Ebin (Ast.And, acc, parse_factor st))
    | _ -> acc
  in
  more first

and parse_factor st : Ast.expr =
  match peek st with
  | Lexer.Int v -> advance st; Ast.Eint v
  | Lexer.Real f -> advance st; Ast.Ereal f
  | Lexer.Char c -> advance st; Ast.Echar c
  | Lexer.Kw "true" -> advance st; Ast.Ebool true
  | Lexer.Kw "false" -> advance st; Ast.Ebool false
  | Lexer.Kw "not" -> advance st; Ast.Eun (Ast.Not, parse_factor st)
  | Lexer.Sym "(" ->
      advance st;
      let e = parse_expr st in
      expect_sym st ")";
      e
  | Lexer.Ident name -> (
      advance st;
      match peek st with
      | Lexer.Sym "[" ->
          advance st;
          let idx = parse_expr st in
          expect_sym st "]";
          Ast.Eindex (name, idx)
      | Lexer.Sym "(" ->
          advance st;
          let args = ref [ parse_expr st ] in
          while peek st = Lexer.Sym "," do
            advance st;
            args := parse_expr st :: !args
          done;
          expect_sym st ")";
          Ast.Ecall (name, List.rev !args)
      | _ -> Ast.Evar name)
  | t -> fail st "expected an expression, found %a" Lexer.pp_token t

(* -- statements --------------------------------------------------------------- *)

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Lexer.Kw "begin" ->
      (* a bare block used as a statement *)
      let body = parse_block st in
      (match body with [ s ] -> s | ss -> Ast.Sblock ss)
  | Lexer.Kw "if" ->
      advance st;
      let cond = parse_expr st in
      expect_kw st "then";
      let then_ = parse_body st in
      let else_ =
        if peek st = Lexer.Kw "else" then begin
          advance st;
          parse_body st
        end
        else []
      in
      Ast.Sif (cond, then_, else_)
  | Lexer.Kw "while" ->
      advance st;
      let cond = parse_expr st in
      expect_kw st "do";
      Ast.Swhile (cond, parse_body st)
  | Lexer.Kw "repeat" ->
      advance st;
      let body = parse_stmts st in
      expect_kw st "until";
      Ast.Srepeat (body, parse_expr st)
  | Lexer.Kw "for" ->
      advance st;
      let var = expect_ident st in
      expect_sym st ":=";
      let from_ = parse_expr st in
      let downto_ =
        match peek st with
        | Lexer.Kw "to" -> advance st; false
        | Lexer.Kw "downto" -> advance st; true
        | t -> fail st "expected to/downto, found %a" Lexer.pp_token t
      in
      let to_ = parse_expr st in
      expect_kw st "do";
      Ast.Sfor { var; from_; downto_; to_; body = parse_body st }
  | Lexer.Kw "case" ->
      advance st;
      let sel = parse_expr st in
      expect_kw st "of";
      let arms = ref [] in
      let otherwise = ref None in
      let rec arm () =
        match peek st with
        | Lexer.Kw "end" -> advance st
        | Lexer.Kw "otherwise" ->
            advance st;
            let body = parse_body st in
            (if peek st = Lexer.Sym ";" then advance st);
            otherwise := Some body;
            expect_kw st "end"
        | _ ->
            let labels = ref [ expect_int st ] in
            while peek st = Lexer.Sym "," do
              advance st;
              labels := expect_int st :: !labels
            done;
            expect_sym st ":";
            let body = parse_body st in
            (if peek st = Lexer.Sym ";" then advance st);
            arms := (List.rev !labels, body) :: !arms;
            arm ()
      in
      arm ();
      Ast.Scase (sel, List.rev !arms, !otherwise)
  | Lexer.Ident name -> (
      advance st;
      match peek st with
      | Lexer.Sym ":=" ->
          advance st;
          Ast.Sassign (Ast.Lvar name, parse_expr st)
      | Lexer.Sym "[" ->
          advance st;
          let idx = parse_expr st in
          expect_sym st "]";
          expect_sym st ":=";
          Ast.Sassign (Ast.Lindex (name, idx), parse_expr st)
      | Lexer.Sym "(" ->
          advance st;
          let args = ref [ parse_expr st ] in
          while peek st = Lexer.Sym "," do
            advance st;
            args := parse_expr st :: !args
          done;
          expect_sym st ")";
          Ast.Scall (name, List.rev !args)
      | _ -> Ast.Scall (name, []))
  | _ -> Ast.Sempty

and parse_body st : Ast.stmt list =
  if peek st = Lexer.Kw "begin" then parse_block st else [ parse_stmt st ]

and parse_block st : Ast.stmt list =
  expect_kw st "begin";
  let ss = parse_stmts st in
  expect_kw st "end";
  ss

and parse_stmts st : Ast.stmt list =
  let first = parse_stmt st in
  let rec more acc =
    if peek st = Lexer.Sym ";" then begin
      advance st;
      more (parse_stmt st :: acc)
    end
    else List.rev acc
  in
  List.filter (fun s -> s <> Ast.Sempty) (more [ first ])

(* -- program ------------------------------------------------------------------- *)

let parse_program st : Ast.program =
  expect_kw st "program";
  let prog_name = expect_ident st in
  expect_sym st ";";
  let globals = parse_var_section st in
  let procs = ref [] in
  while peek st = Lexer.Kw "procedure" do
    advance st;
    let p_name = expect_ident st in
    expect_sym st ";";
    let p_locals = parse_var_section st in
    let p_body = parse_block st in
    expect_sym st ";";
    procs := { Ast.p_name; p_locals; p_body } :: !procs
  done;
  let main = parse_block st in
  expect_sym st ".";
  { Ast.prog_name; globals; procs = List.rev !procs; main }

let of_string (src : string) : (Ast.program, error) result =
  match Lexer.tokenize src with
  | Error e -> Error { line = e.Lexer.line; msg = e.Lexer.msg }
  | Ok toks -> (
      let st = { toks } in
      try Ok (parse_program st) with
      | Fail e -> Error e
      | Lexer.Fail e -> Error { line = e.Lexer.line; msg = e.Lexer.msg })
