(** Static semantics: name resolution and type checking.

    Scoping is two-level: globals (the main program's frame) and one set
    of locals per procedure.  Inside a procedure, a free identifier
    resolves to the enclosing program's variable (reached through the
    frame back-chain at code-generation time). *)

type error = { msg : string }

let pp_error ppf e = Fmt.pf ppf "pascal: %s" e.msg

exception Fail of error

let fail fmt = Fmt.kstr (fun msg -> raise (Fail { msg })) fmt
let tname t = Fmt.str "%a" Ast.pp_ty t

type scope = {
  globals : (string, Ast.ty) Hashtbl.t;
  locals : (string, Ast.ty) Hashtbl.t option; (* None in the main program *)
  procs : (string, unit) Hashtbl.t;
}

type checked = { prog : Ast.program }

let lookup scope name : Ast.ty =
  let local =
    Option.bind scope.locals (fun l -> Hashtbl.find_opt l name)
  in
  match local with
  | Some t -> t
  | None -> (
      match Hashtbl.find_opt scope.globals name with
      | Some t -> t
      | None -> fail "undeclared variable %s" name)

(* the type of an expression, with subranges decaying to integer *)
let rec type_of scope (e : Ast.expr) : Ast.ty =
  match e with
  | Ast.Eint _ -> Ast.Tint
  | Ast.Ereal _ -> Ast.Treal
  | Ast.Ebool _ -> Ast.Tbool
  | Ast.Echar _ -> Ast.Tchar
  | Ast.Evar v -> (
      match Ast.scalar (lookup scope v) with
      | Ast.Tarray _ -> fail "array %s used without a subscript" v
      | t -> t)
  | Ast.Eindex (v, idx) -> (
      (match type_of scope idx with
      | Ast.Tint | Ast.Tchar -> ()
      | t -> fail "subscript of %s must be an integer, got %s" v (tname t));
      match lookup scope v with
      | Ast.Tarray { elem; _ } -> Ast.scalar elem
      | _ -> fail "%s is not an array" v)
  | Ast.Eun (Ast.Neg, e) -> (
      match type_of scope e with
      | Ast.Tint -> Ast.Tint
      | Ast.Treal -> Ast.Treal
      | t -> fail "unary minus over %s" (tname t))
  | Ast.Eun (Ast.Not, e) -> (
      match type_of scope e with
      | Ast.Tbool -> Ast.Tbool
      | t -> fail "not over %s" (tname t))
  | Ast.Ebin (op, a, b) -> (
      let ta = type_of scope a and tb = type_of scope b in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul -> (
          match (ta, tb) with
          | Ast.Tint, Ast.Tint -> Ast.Tint
          | (Ast.Treal | Ast.Tint), (Ast.Treal | Ast.Tint) -> Ast.Treal
          | _ ->
              fail "%s over %s and %s" (Ast.binop_name op) (tname ta)
                (tname tb))
      | Ast.Div | Ast.Mod ->
          if ta = Ast.Tint && tb = Ast.Tint then Ast.Tint
          else fail "%s requires integers" (Ast.binop_name op)
      | Ast.RDiv -> (
          match (ta, tb) with
          | (Ast.Treal | Ast.Tint), (Ast.Treal | Ast.Tint) -> Ast.Treal
          | _ -> fail "/ requires numeric operands")
      | Ast.And | Ast.Or ->
          if ta = Ast.Tbool && tb = Ast.Tbool then Ast.Tbool
          else fail "%s requires booleans" (Ast.binop_name op)
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> (
          match (ta, tb) with
          | Ast.Tint, Ast.Tint | Ast.Tchar, Ast.Tchar -> Ast.Tbool
          | (Ast.Treal | Ast.Tint), (Ast.Treal | Ast.Tint) -> Ast.Tbool
          | Ast.Tbool, Ast.Tbool when op = Ast.Eq || op = Ast.Ne -> Ast.Tbool
          | _ -> fail "comparison between %s and %s" (tname ta) (tname tb))
      | Ast.In -> (
          match (ta, tb) with
          | (Ast.Tint | Ast.Tchar), Ast.Tset _ -> Ast.Tbool
          | _ -> fail "in requires an integer and a set"))
  | Ast.Ecall (f, args) -> (
      match List.assoc_opt f Ast.builtins with
      | None -> fail "unknown function %s" f
      | Some arity ->
          if List.length args <> arity then
            fail "%s expects %d argument(s)" f arity;
          let targs = List.map (type_of scope) args in
          (match (f, targs) with
          | "abs", [ Ast.Tint ] -> Ast.Tint
          | "abs", [ Ast.Treal ] -> Ast.Treal
          | "sqr", [ Ast.Tint ] -> Ast.Tint
          | "sqr", [ Ast.Treal ] -> Ast.Treal
          | "odd", [ Ast.Tint ] -> Ast.Tbool
          | "trunc", [ (Ast.Treal | Ast.Tint) ] -> Ast.Tint
          | "ord", [ (Ast.Tchar | Ast.Tbool | Ast.Tint) ] -> Ast.Tint
          | "chr", [ Ast.Tint ] -> Ast.Tchar
          | "succ", [ Ast.Tint ] -> Ast.Tint
          | "succ", [ Ast.Tchar ] -> Ast.Tchar
          | "pred", [ Ast.Tint ] -> Ast.Tint
          | "pred", [ Ast.Tchar ] -> Ast.Tchar
          | ("min" | "max"), [ Ast.Tint; Ast.Tint ] -> Ast.Tint
          | ("min" | "max"), [ (Ast.Treal | Ast.Tint); (Ast.Treal | Ast.Tint) ]
            -> Ast.Treal
          | _ -> fail "bad argument types for %s" f))

(* the set type of a variable, for in/include/exclude *)
let set_of scope v =
  match lookup scope v with
  | Ast.Tset n -> n
  | _ -> fail "%s is not a set" v

let assignable ~(target : Ast.ty) ~(value : Ast.ty) =
  match (Ast.scalar target, value) with
  | Ast.Tint, Ast.Tint
  | Ast.Tbool, Ast.Tbool
  | Ast.Tchar, Ast.Tchar
  | Ast.Treal, (Ast.Treal | Ast.Tint) ->
      true
  | _ -> false

let rec check_stmt scope (s : Ast.stmt) : unit =
  match s with
  | Ast.Sassign (lv, e) -> (
      let tv = type_of scope e in
      match lv with
      | Ast.Lvar v -> (
          match lookup scope v with
          | Ast.Tarray _ -> fail "cannot assign to whole array %s" v
          | t ->
              if not (assignable ~target:t ~value:tv) then
                fail "type mismatch assigning to %s" v)
      | Ast.Lindex (v, idx) -> (
          (match type_of scope idx with
          | Ast.Tint | Ast.Tchar -> ()
          | _ -> fail "subscript of %s must be an integer" v);
          match lookup scope v with
          | Ast.Tarray { elem; _ } ->
              if not (assignable ~target:elem ~value:tv) then
                fail "type mismatch assigning to %s[...]" v
          | _ -> fail "%s is not an array" v))
  | Ast.Sif (c, a, b) ->
      if type_of scope c <> Ast.Tbool then fail "if condition must be boolean";
      List.iter (check_stmt scope) a;
      List.iter (check_stmt scope) b
  | Ast.Swhile (c, body) ->
      if type_of scope c <> Ast.Tbool then fail "while condition must be boolean";
      List.iter (check_stmt scope) body
  | Ast.Srepeat (body, c) ->
      List.iter (check_stmt scope) body;
      if type_of scope c <> Ast.Tbool then fail "until condition must be boolean"
  | Ast.Sfor { var; from_; to_; body; _ } ->
      (match Ast.scalar (lookup scope var) with
      | Ast.Tint -> ()
      | _ -> fail "for variable %s must be an integer" var);
      if type_of scope from_ <> Ast.Tint then fail "for bounds must be integers";
      if type_of scope to_ <> Ast.Tint then fail "for bounds must be integers";
      List.iter (check_stmt scope) body
  | Ast.Scase (sel, arms, otherwise) ->
      (match type_of scope sel with
      | Ast.Tint | Ast.Tchar -> ()
      | _ -> fail "case selector must be an integer");
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (labels, body) ->
          List.iter
            (fun l ->
              if Hashtbl.mem seen l then fail "duplicate case label %d" l;
              Hashtbl.replace seen l ())
            labels;
          List.iter (check_stmt scope) body)
        arms;
      Option.iter (List.iter (check_stmt scope)) otherwise
  | Ast.Sblock body -> List.iter (check_stmt scope) body
  | Ast.Sempty -> ()
  | Ast.Scall ("include", [ Ast.Evar s; e ]) | Ast.Scall ("exclude", [ Ast.Evar s; e ])
    ->
      ignore (set_of scope s);
      if type_of scope e <> Ast.Tint then fail "set element must be an integer"
  | Ast.Scall (("include" | "exclude"), _) ->
      fail "include/exclude expect a set variable and an element"
  | Ast.Scall ("write", [ e ]) -> (
      (* the output area and its counters live in the main frame *)
      if scope.locals <> None then
        fail "write may only be used in the main program";
      match type_of scope e with
      | Ast.Tint | Ast.Tbool | Ast.Tchar | Ast.Treal -> ()
      | _ -> fail "write expects a scalar")
  | Ast.Scall ("write", _) -> fail "write expects one argument"
  | Ast.Scall (p, args) ->
      if not (Hashtbl.mem scope.procs p) then fail "unknown procedure %s" p;
      if args <> [] then fail "procedure %s takes no arguments" p;
      (* globals are reached through a one-level frame chain, so calls
         may only come from the main program *)
      if scope.locals <> None then
        fail "procedures may only be called from the main program"

let check (prog : Ast.program) : (checked, error) result =
  try
    let globals = Hashtbl.create 16 in
    List.iter
      (fun (d : Ast.var_decl) ->
        if Hashtbl.mem globals d.v_name then
          fail "duplicate variable %s" d.v_name;
        Hashtbl.replace globals d.v_name d.v_ty)
      prog.Ast.globals;
    let procs = Hashtbl.create 8 in
    List.iter
      (fun (p : Ast.proc_decl) ->
        if Hashtbl.mem procs p.Ast.p_name then
          fail "duplicate procedure %s" p.Ast.p_name;
        Hashtbl.replace procs p.Ast.p_name ())
      prog.Ast.procs;
    (* procedures *)
    List.iter
      (fun (p : Ast.proc_decl) ->
        let locals = Hashtbl.create 8 in
        List.iter
          (fun (d : Ast.var_decl) ->
            if Hashtbl.mem locals d.v_name then
              fail "duplicate local %s in %s" d.v_name p.Ast.p_name;
            Hashtbl.replace locals d.v_name d.v_ty)
          p.Ast.p_locals;
        let scope = { globals; locals = Some locals; procs } in
        List.iter (check_stmt scope) p.Ast.p_body)
      prog.Ast.procs;
    let scope = { globals; locals = None; procs } in
    List.iter (check_stmt scope) prog.Ast.main;
    Ok { prog }
  with Fail e -> Error e

(** Parse and check in one step. *)
let front_end (src : string) : (checked, string) result =
  match Parser.of_string src with
  | Error e -> Error (Fmt.str "%a" Parser.pp_error e)
  | Ok prog -> (
      match check prog with
      | Error e -> Error (Fmt.str "%a" pp_error e)
      | Ok c -> Ok c)
