(* The shaping routine in isolation: storage layout, IF tree shapes, and
   the CSE optimizer's rewriting rules. *)

module Ast = Pascal.Ast
module Tree = Ifl.Tree

let check_int = Alcotest.(check int)

(* -- layout ----------------------------------------------------------------- *)

let test_storage_formats () =
  Alcotest.(check bool) "int is fullword" true
    (Shaper.Layout.storage_of Ast.Tint = Shaper.Layout.Sfull);
  Alcotest.(check bool) "bool is byte" true
    (Shaper.Layout.storage_of Ast.Tbool = Shaper.Layout.Sbyte);
  Alcotest.(check bool) "small subrange is halfword" true
    (Shaper.Layout.storage_of (Ast.Tsub (-100, 100)) = Shaper.Layout.Shalf);
  Alcotest.(check bool) "large subrange is fullword" true
    (Shaper.Layout.storage_of (Ast.Tsub (0, 100000)) = Shaper.Layout.Sfull);
  Alcotest.(check bool) "real is doubleword" true
    (Shaper.Layout.storage_of Ast.Treal = Shaper.Layout.Sdouble);
  check_int "set of 0..15 is 2 bytes" 2
    (Shaper.Layout.size_of (Shaper.Layout.storage_of (Ast.Tset 15)))

let test_layout_alignment () =
  let l = Shaper.Layout.create () in
  let b = Shaper.Layout.add_var l { Ast.v_name = "b"; v_ty = Ast.Tbool } in
  let r = Shaper.Layout.add_var l { Ast.v_name = "r"; v_ty = Ast.Treal } in
  let h = Shaper.Layout.add_var l { Ast.v_name = "h"; v_ty = Ast.Tsub (0, 10) } in
  check_int "byte first" Machine.Runtime.locals_base b.Shaper.Layout.disp;
  check_int "double aligned to 8" 0 (r.Shaper.Layout.disp mod 8);
  check_int "half aligned to 2" 0 (h.Shaper.Layout.disp mod 2)

let test_layout_overflow () =
  let l = Shaper.Layout.create () in
  match
    Shaper.Layout.add_var l
      { Ast.v_name = "big";
        v_ty = Ast.Tarray { lo = 0; hi = 2000; elem = Ast.Tint } }
  with
  | exception Shaper.Layout.Frame_overflow _ -> ()
  | _ -> Alcotest.fail "page overflow not detected"

(* -- shaping ---------------------------------------------------------------- *)

let shape ?checks src =
  match Pascal.Sema.front_end src with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match Shaper.Irgen.shape ?checks c with
      | Ok sh -> sh
      | Error e -> Alcotest.failf "%a" Shaper.Irgen.pp_error e)

let rec tree_ops (Tree.Node (t, kids)) =
  t.Ifl.Token.sym :: List.concat_map tree_ops kids

let program_ops (sh : Shaper.Irgen.shaped) =
  List.concat_map tree_ops sh.Shaper.Irgen.trees

let test_decrement_idiom () =
  let sh = shape "program p; var x : integer; begin x := x - 1 end." in
  Alcotest.(check bool) "decr emitted" true (List.mem "decr" (program_ops sh))

let test_shift_strength_reduction () =
  let sh = shape "program p; var x : integer; begin x := x * 8 end." in
  let ops = program_ops sh in
  Alcotest.(check bool) "l_shift emitted" true (List.mem "l_shift" ops);
  Alcotest.(check bool) "no multiply" false (List.mem "imult" ops)

let test_general_add_not_la () =
  (* x + 1 on an arbitrary integer must not use the 24-bit LA idiom *)
  let sh = shape "program p; var x, y : integer; begin y := x + 1 end." in
  let ops = program_ops sh in
  Alcotest.(check bool) "no incr on general add" false (List.mem "incr" ops);
  Alcotest.(check bool) "iadd used" true (List.mem "iadd" ops)

let test_for_loop_uses_incr () =
  let sh =
    shape "program p; var i, s : integer; begin for i := 1 to 9 do s := s + i end."
  in
  Alcotest.(check bool) "constant-bounded loop counter uses incr" true
    (List.mem "incr" (program_ops sh))

let test_checks_flag () =
  let src =
    "program p; var a : array[2..9] of integer; i : integer; begin a[i] := 1 end."
  in
  let without = shape ~checks:false src in
  let with_ = shape ~checks:true src in
  Alcotest.(check bool) "no check by default" false
    (List.mem "subscript_check" (program_ops without));
  Alcotest.(check bool) "check when asked" true
    (List.mem "subscript_check" (program_ops with_))

let test_global_access_through_chain () =
  let sh =
    shape
      "program p; var g : integer; procedure q; var l : integer; begin l := \
       g; g := l end; begin q end."
  in
  (* inside the procedure, g's base register is a loaded back chain:
     fullword dsp:4 r:13 appears under another fullword *)
  let rec has_chain (Tree.Node (t, kids)) =
    (t.Ifl.Token.sym = "fullword"
    && match kids with
       | [ Tree.Node (d, []); Tree.Node (b, []) ] ->
           d.Ifl.Token.value = Ifl.Value.Int Machine.Runtime.old_base
           && b.Ifl.Token.value = Ifl.Value.Reg Machine.Runtime.stack_base
       | _ -> false)
    || List.exists has_chain kids
  in
  Alcotest.(check bool) "chain load present" true
    (List.exists has_chain sh.Shaper.Irgen.trees)

let test_proc_slots_and_labels () =
  let sh =
    shape
      "program p; var x : integer; procedure a; begin x := 1 end; procedure \
       b; begin x := 2 end; begin a; b end."
  in
  check_int "two procedure slots" 2 (List.length sh.Shaper.Irgen.proc_slots);
  let slots = List.map (fun (_, s, _) -> s) sh.Shaper.Irgen.proc_slots in
  Alcotest.(check (list int)) "slot indices" [ 0; 1 ] slots

(* -- CSE optimizer ------------------------------------------------------------ *)

let optimize sh = Shaper.Cse_opt.optimize sh

let count_op op sh =
  List.length (List.filter (String.equal op) (program_ops sh))

let test_cse_rewrites_repeats () =
  let sh =
    shape "program p; var a, b, x : integer; begin x := (a + b) * (a + b) end."
  in
  let opt = optimize sh in
  check_int "one make_common" 1 (count_op "make_common" opt);
  check_int "one use_common" 1 (count_op "use_common" opt);
  (* the second (a+b) is gone *)
  check_int "one iadd remains" 1 (count_op "iadd" opt)

let test_cse_not_in_assign_target () =
  (* the address operand of an assignment looks like a load but is
     positional; it must never become a CSE definition or use *)
  let sh = shape "program p; var x : integer; begin x := x + x end." in
  let opt = optimize sh in
  (* x's two loads inside the expression may CSE, but the target
     fullword must survive as the first child of assign *)
  List.iter
    (fun tree ->
      match tree with
      | Tree.Node (t, first :: _) when t.Ifl.Token.sym = "assign" ->
          Alcotest.(check bool)
            "assign target intact" true
            ((Tree.token first).Ifl.Token.sym = "fullword")
      | _ -> ())
    opt.Shaper.Irgen.trees

let test_cse_no_cross_statement () =
  (* the same expression in two statements must not share a CSE: an
     assignment could intervene *)
  let sh =
    shape
      "program p; var a, b, x, y : integer; begin x := a + b; a := 0; y := a \
       + b end."
  in
  let opt = optimize sh in
  check_int "no make_common across statements" 0 (count_op "make_common" opt)

let test_cse_impure_not_shared () =
  (* calls and divisions by possibly-zero values are still pure in this
     language, but make sure write counters (hidden incr) are untouched *)
  let sh =
    shape "program p; var a : integer; begin write(a); write(a) end."
  in
  let opt = optimize sh in
  check_int "write counters not CSEd" 0 (count_op "make_common" opt)

let test_cse_temp_allocated_in_frame () =
  let sh =
    shape "program p; var a, b, x : integer; begin x := (a + b) * (a + b) end."
  in
  let before = Shaper.Layout.frame_bytes sh.Shaper.Irgen.main_frame in
  let _ = optimize sh in
  let after = Shaper.Layout.frame_bytes sh.Shaper.Irgen.main_frame in
  Alcotest.(check bool) "temporary reserved" true (after = before + 4)

let () =
  Alcotest.run "shaper"
    [
      ( "layout",
        [
          Alcotest.test_case "storage formats" `Quick test_storage_formats;
          Alcotest.test_case "alignment" `Quick test_layout_alignment;
          Alcotest.test_case "page overflow" `Quick test_layout_overflow;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "decrement idiom" `Quick test_decrement_idiom;
          Alcotest.test_case "shift strength reduction" `Quick test_shift_strength_reduction;
          Alcotest.test_case "general add avoids LA" `Quick test_general_add_not_la;
          Alcotest.test_case "loop counter incr" `Quick test_for_loop_uses_incr;
          Alcotest.test_case "checks flag" `Quick test_checks_flag;
          Alcotest.test_case "global chain" `Quick test_global_access_through_chain;
          Alcotest.test_case "procedure slots" `Quick test_proc_slots_and_labels;
        ] );
      ( "cse",
        [
          Alcotest.test_case "rewrites repeats" `Quick test_cse_rewrites_repeats;
          Alcotest.test_case "assign target excluded" `Quick test_cse_not_in_assign_target;
          Alcotest.test_case "no cross-statement sharing" `Quick test_cse_no_cross_statement;
          Alcotest.test_case "write counters untouched" `Quick test_cse_impure_not_shared;
          Alcotest.test_case "temp allocated" `Quick test_cse_temp_allocated_in_frame;
        ] );
    ]
