(* End-to-end compiler tests: Pascal source through the CoGG-generated
   code generator, executed on the 370 simulator and checked against the
   reference interpreter.  Includes a property test over randomly
   generated programs. *)

let tables () = Lazy.force Util.amdahl_tables

let verify_ok ?cse ?checks ?strategy name src =
  match Pipeline.verify ?cse ?checks ?strategy (tables ()) src with
  | Error m -> Alcotest.failf "%s: %s" name m
  | Ok v ->
      if not v.Pipeline.agreed then
        Alcotest.failf "%s: machine and interpreter disagree: %s" name
          (String.concat "; " v.Pipeline.mismatches);
      v

let test_named_programs () =
  List.iter (fun (name, src) -> ignore (verify_ok name src)) Pipeline.Programs.all

let test_named_programs_no_cse () =
  List.iter
    (fun (name, src) -> ignore (verify_ok ~cse:false name src))
    Pipeline.Programs.all

let test_named_programs_with_checks () =
  List.iter
    (fun (name, src) -> ignore (verify_ok ~checks:true name src))
    Pipeline.Programs.all

let test_appendix1_equation_value () =
  let v = verify_ok "appendix1a" Pipeline.Programs.appendix1_equation in
  Alcotest.(check (list int))
    "x[q]"
    [ 100 + (3 * (50 - 8)) + (900 / (7 + 13) * 2) ]
    v.Pipeline.executed.Pipeline.written_ints

let test_appendix1_branches_value () =
  let v = verify_ok "appendix1b" Pipeline.Programs.appendix1_branches in
  Alcotest.(check (list int))
    "i and l" [ 40; 7 ] v.Pipeline.executed.Pipeline.written_ints

let test_gcd_value () =
  let v = verify_ok "gcd" Pipeline.Programs.gcd in
  Alcotest.(check (list int)) "gcd" [ 252 ] v.Pipeline.executed.Pipeline.written_ints

let test_sieve_value () =
  let v = verify_ok "sieve" Pipeline.Programs.sieve in
  Alcotest.(check (list int))
    "primes up to 120" [ 30 ] v.Pipeline.executed.Pipeline.written_ints

let test_fib_value () =
  let v = verify_ok "fib" Pipeline.Programs.fibonacci in
  Alcotest.(check (list int)) "fib 30" [ 832040 ] v.Pipeline.executed.Pipeline.written_ints

let test_procedures_value () =
  let v = verify_ok "procs" Pipeline.Programs.procedures in
  (* total = (10+1) + (20+1) = 32, value = 20 *)
  Alcotest.(check (list int)) "globals through chain" [ 32; 20 ]
    v.Pipeline.executed.Pipeline.written_ints

let test_integral_value () =
  let v = verify_ok "integral" Pipeline.Programs.integral in
  match v.Pipeline.executed.Pipeline.written_reals with
  | [ x ] -> Alcotest.(check (float 1e-3)) "integral of x^2" 0.3333 x
  | _ -> Alcotest.fail "expected one real"

let test_cse_actually_fires () =
  let t = tables () in
  match Pipeline.compile ~cse:true t Pipeline.Programs.cse_demo with
  | Error m -> Alcotest.fail m
  | Ok c ->
      let has_common =
        List.exists
          (fun (tok : Ifl.Token.t) -> tok.Ifl.Token.sym = "make_common")
          c.Pipeline.tokens
      in
      Alcotest.(check bool) "make_common present" true has_common;
      (* and the optimized program is shorter than the unoptimized one *)
      (match Pipeline.compile ~cse:false t Pipeline.Programs.cse_demo with
      | Error m -> Alcotest.fail m
      | Ok c0 ->
          let len c =
            Bytes.length c.Pipeline.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.code
          in
          Alcotest.(check bool)
            "CSE code is smaller" true
            (len c < len c0))

let test_subscript_check_catches () =
  let src =
    {|
program oob;
var a : array[0..9] of integer;
    i : integer;
begin
  i := 15;
  a[i] := 1
end.
|}
  in
  let t = tables () in
  match Pipeline.compile ~checks:true t src with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match Pipeline.execute c with
      | Error _ -> ()
      | Ok x ->
          Alcotest.(check bool)
            "aborted on bad subscript" true
            (x.Pipeline.outcome.Machine.Runtime.aborted <> None))

let test_case_without_otherwise_aborts () =
  let src =
    {|
program badcase;
var x, y : integer;
begin
  x := 9;
  case x of
    1: y := 1;
    2: y := 2
  end
end.
|}
  in
  let t = tables () in
  match Pipeline.compile t src with
  | Error m -> Alcotest.fail m
  | Ok c -> (
      match Pipeline.execute c with
      | Error _ -> ()
      | Ok x ->
          Alcotest.(check bool)
            "aborted on unmatched case" true
            (x.Pipeline.outcome.Machine.Runtime.aborted <> None))

let test_front_end_errors () =
  let t = tables () in
  let bad =
    [
      ("type mismatch", "program p; var x : integer; begin x := true end.");
      ("undeclared", "program p; begin x := 1 end.");
      ("syntax", "program p; begin if then end.");
      ("real div", "program p; var r : real; begin r := r div r end.");
      ("bool condition", "program p; var x : integer; begin if x then x := 1 end.");
      ("nested proc call",
       "program p; var x : integer; procedure a; begin x := 1 end; \
        procedure b; begin a end; begin b end.");
    ]
  in
  List.iter
    (fun (name, src) ->
      match Pipeline.compile t src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: bad program accepted" name)
    bad

(* -- random program property test ------------------------------------------- *)

(* A generator of well-formed integer programs over variables v0..v4.
   Expressions avoid division by zero by only dividing by non-zero
   constants. *)
let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let var = map (fun i -> Printf.sprintf "v%d" i) (int_bound 4) in
  let int_lit =
    map
      (fun n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n)
      (int_range (-50) 50)
  in
  let rec expr depth =
    if depth = 0 then oneof [ int_lit; var ]
    else
      let sub = expr (depth - 1) in
      oneof
        [
          int_lit;
          var;
          map2 (Printf.sprintf "(%s + %s)") sub sub;
          map2 (Printf.sprintf "(%s - %s)") sub sub;
          map2 (Printf.sprintf "(%s * %s)") (expr 0) (expr 0);
          map2
            (fun a d -> Printf.sprintf "(%s div %d)" a d)
            sub (int_range 1 9);
          map2
            (fun a d -> Printf.sprintf "(%s mod %d)" a d)
            sub (int_range 1 9);
          map (Printf.sprintf "abs(%s)") sub;
          map2 (Printf.sprintf "min(%s, %s)") sub sub;
          map2 (Printf.sprintf "max(%s, %s)") sub sub;
        ]
  in
  let relation =
    let op = oneofl [ "<"; "<="; ">"; ">="; "="; "<>" ] in
    map3 (fun a o b -> Printf.sprintf "%s %s %s" a o b) (expr 1) op (expr 1)
  in
  let rec stmt depth =
    let assign =
      map2 (fun v e -> Printf.sprintf "%s := %s" v e) var (expr 2)
    in
    if depth = 0 then assign
    else
      let body = stmts (depth - 1) in
      oneof
        [
          assign;
          map2
            (fun c (a, b) ->
              Printf.sprintf "if %s then begin %s end else begin %s end" c a b)
            relation (pair body body);
          map2
            (fun lo body ->
              (* the control variable is dedicated and unique per nesting
                 depth: reuse or reassignment could loop forever *)
              Printf.sprintf "for w%d := %d to %d do begin %s end" depth lo
                (lo + 3) body)
            (int_range 0 5) body;
        ]
  and stmts depth =
    map (String.concat "; ") (list_size (int_range 1 4) (stmt depth))
  in
  map
    (fun body ->
      Printf.sprintf
        "program rand; var v0, v1, v2, v3, v4, w0, w1, w2 : integer; begin %s end."
        body)
    (stmts 2)

let prop_random_programs =
  QCheck.Test.make ~count:60 ~name:"random programs: machine = interpreter"
    (QCheck.make gen_program ~print:Fun.id)
    (fun src ->
      match Pipeline.verify (tables ()) src with
      | Error m -> QCheck.Test.fail_reportf "pipeline error: %s\n%s" m src
      | Ok v ->
          if not v.Pipeline.agreed then
            QCheck.Test.fail_reportf "disagreement: %s\n%s"
              (String.concat "; " v.Pipeline.mismatches)
              src
          else true)

let prop_random_programs_no_cse =
  QCheck.Test.make ~count:30 ~name:"random programs (no CSE)"
    (QCheck.make gen_program ~print:Fun.id)
    (fun src ->
      match Pipeline.verify ~cse:false (tables ()) src with
      | Error m -> QCheck.Test.fail_reportf "pipeline error: %s\n%s" m src
      | Ok v -> v.Pipeline.agreed)

let () =
  Alcotest.run "pipeline"
    [
      ( "programs",
        [
          Alcotest.test_case "all named programs agree" `Quick test_named_programs;
          Alcotest.test_case "without CSE" `Quick test_named_programs_no_cse;
          Alcotest.test_case "with runtime checks" `Quick test_named_programs_with_checks;
        ] );
      ( "values",
        [
          Alcotest.test_case "appendix 1 equation" `Quick test_appendix1_equation_value;
          Alcotest.test_case "appendix 1 branches" `Quick test_appendix1_branches_value;
          Alcotest.test_case "gcd" `Quick test_gcd_value;
          Alcotest.test_case "sieve" `Quick test_sieve_value;
          Alcotest.test_case "fibonacci" `Quick test_fib_value;
          Alcotest.test_case "procedures" `Quick test_procedures_value;
          Alcotest.test_case "integral" `Quick test_integral_value;
        ] );
      ( "optimization",
        [ Alcotest.test_case "CSE fires and shrinks code" `Quick test_cse_actually_fires ] );
      ( "safety",
        [
          Alcotest.test_case "subscript check" `Quick test_subscript_check_catches;
          Alcotest.test_case "unmatched case aborts" `Quick test_case_without_otherwise_aborts;
          Alcotest.test_case "front end rejects bad programs" `Quick test_front_end_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_programs; prop_random_programs_no_cse ] );
    ]
