(* The LR machinery on its own: grammar analysis, LR(0) construction,
   SLR/LALR lookaheads, Graham-Glanville conflict resolution, and a
   property test over randomly generated prefix-operator grammars. *)

let check_int = Alcotest.(check int)

(* Build a grammar from (lhs, rhs list) pairs; nonterminals are the LHS
   names, everything else terminals. *)
let grammar prods =
  let b = Cogg.Grammar.builder () in
  let lhss = List.sort_uniq compare (List.map fst prods) in
  List.iter (fun l -> ignore (Cogg.Grammar.declare_nonterminal b l)) lhss;
  List.iter
    (fun (lhs, rhs) ->
      let lhs =
        if lhs = "lambda" then Cogg.Grammar.declare_nonterminal ~in_if:false b lhs
        else Cogg.Grammar.intern b lhs
      in
      let rhs = Array.of_list (List.map (Cogg.Grammar.intern b) rhs) in
      Cogg.Grammar.add_prod b ~lhs ~rhs ~line:0)
    prods;
  Cogg.Grammar.finish b

(* drive the parse table directly, shifting tokens; reductions prefix the
   bare LHS (no attributes needed at this level) *)
let accepts (pt : Cogg.Parse_table.t) (input : string list) : bool =
  let g = pt.Cogg.Parse_table.grammar in
  let sym name = Option.get (Cogg.Grammar.sym g name) in
  let rec go stack pending steps =
    if steps > 10_000 then false
    else
      match pending with
      | [] -> false
      | tok :: rest -> (
          let state = List.hd stack in
          match Cogg.Parse_table.action pt state (sym tok) with
          | Cogg.Parse_table.Accept -> true
          | Cogg.Parse_table.Error -> false
          | Cogg.Parse_table.Shift s -> go (s :: stack) rest (steps + 1)
          | Cogg.Parse_table.Reduce p ->
              let prod = Cogg.Grammar.prod g p in
              let n = Array.length prod.Cogg.Grammar.rhs in
              let rec drop k st = if k = 0 then st else drop (k - 1) (List.tl st) in
              let stack = drop n stack in
              go stack (Cogg.Grammar.name g prod.Cogg.Grammar.lhs :: pending)
                (steps + 1))
  in
  let start = pt.Cogg.Parse_table.automaton.Cogg.Lr0.start in
  go [ start ] (input @ [ Cogg.Grammar.eof_name ]) 0

(* -- FIRST/FOLLOW ------------------------------------------------------------ *)

let test_first_includes_self () =
  (* non-terminals can appear literally in the input stream, so FIRST(N)
     must contain N itself *)
  let g = grammar [ ("e", [ "plus"; "e"; "e" ]); ("e", [ "num" ]);
                    ("lambda", [ "store"; "e" ]) ] in
  let an = Cogg.Grammar.analyze g in
  let e = Option.get (Cogg.Grammar.sym g "e") in
  let plus = Option.get (Cogg.Grammar.sym g "plus") in
  let num = Option.get (Cogg.Grammar.sym g "num") in
  Alcotest.(check bool) "e in FIRST(e)" true
    (Cogg.Grammar.Symset.mem e an.Cogg.Grammar.first.(e));
  Alcotest.(check bool) "plus in FIRST(e)" true
    (Cogg.Grammar.Symset.mem plus an.Cogg.Grammar.first.(e));
  Alcotest.(check bool) "num in FIRST(e)" true
    (Cogg.Grammar.Symset.mem num an.Cogg.Grammar.first.(e))

let test_follow () =
  let g = grammar [ ("e", [ "plus"; "e"; "e" ]); ("e", [ "num" ]);
                    ("lambda", [ "store"; "e" ]) ] in
  let an = Cogg.Grammar.analyze g in
  let e = Option.get (Cogg.Grammar.sym g "e") in
  let num = Option.get (Cogg.Grammar.sym g "num") in
  (* after the first e of "plus e e" comes FIRST(e) *)
  Alcotest.(check bool) "num in FOLLOW(e)" true
    (Cogg.Grammar.Symset.mem num an.Cogg.Grammar.follow.(e))

let test_nullable () =
  let g = grammar [ ("lambda", [ "x" ]) ] in
  let an = Cogg.Grammar.analyze g in
  Alcotest.(check bool) "%stmts is nullable" true
    an.Cogg.Grammar.nullable.(g.Cogg.Grammar.stmts)

(* -- basic parsing ------------------------------------------------------------- *)

let simple_pt ?mode prods =
  let g = grammar prods in
  Cogg.Parse_table.build ?mode (Cogg.Lr0.build g)

let test_accepts_prefix_arithmetic () =
  let pt =
    simple_pt [ ("e", [ "plus"; "e"; "e" ]); ("e", [ "num" ]);
                ("lambda", [ "store"; "e" ]) ]
  in
  Alcotest.(check bool) "store num" true (accepts pt [ "store"; "num" ]);
  Alcotest.(check bool) "nested" true
    (accepts pt [ "store"; "plus"; "num"; "plus"; "num"; "num" ]);
  Alcotest.(check bool) "two statements" true
    (accepts pt [ "store"; "num"; "store"; "num" ]);
  Alcotest.(check bool) "empty program" true (accepts pt []);
  Alcotest.(check bool) "missing operand" false (accepts pt [ "store"; "plus"; "num" ]);
  Alcotest.(check bool) "garbage" false (accepts pt [ "plus" ]);
  Alcotest.(check bool) "trailing operand" false (accepts pt [ "store"; "num"; "num" ])

let test_nonterminal_in_input () =
  (* registers arrive pre-bound: the non-terminal token parses directly *)
  let pt =
    simple_pt [ ("r", [ "load"; "d" ]); ("lambda", [ "store"; "d"; "r" ]) ]
  in
  Alcotest.(check bool) "r token accepted" true (accepts pt [ "store"; "d"; "r" ]);
  Alcotest.(check bool) "load reduces to r" true
    (accepts pt [ "store"; "d"; "load"; "d" ])

(* -- conflict resolution --------------------------------------------------------- *)

let test_shift_preferred () =
  (* op e | op e e: after "op e" with another e-starter in view, shift
     must win (maximal munch) *)
  let prods =
    [ ("e", [ "op"; "e" ]); ("e", [ "op"; "e"; "e" ]); ("e", [ "num" ]);
      ("lambda", [ "store"; "e" ]) ]
  in
  let pt = simple_pt prods in
  let conflicts = pt.Cogg.Parse_table.conflicts in
  Alcotest.(check bool) "conflicts recorded" true (conflicts <> []);
  Alcotest.(check bool) "some shift/reduce" true
    (List.exists (fun c -> c.Cogg.Parse_table.c_kind = `Shift_reduce) conflicts);
  (* maximal munch: "op num num" is one e through the long production *)
  Alcotest.(check bool) "greedy accepted" true
    (accepts pt [ "store"; "op"; "num"; "num" ]);
  Alcotest.(check bool) "short form still reachable" true
    (accepts pt [ "store"; "op"; "num" ])

let test_reduce_reduce_longest_wins () =
  (* identical-prefix productions of different length *)
  let prods =
    [ ("e", [ "load"; "d" ]); ("lambda", [ "move"; "load"; "d" ]);
      ("lambda", [ "store"; "e" ]) ]
  in
  let g = grammar prods in
  let pt = Cogg.Parse_table.build (Cogg.Lr0.build g) in
  let rr =
    List.filter
      (fun c -> c.Cogg.Parse_table.c_kind = `Reduce_reduce)
      pt.Cogg.Parse_table.conflicts
  in
  List.iter
    (fun c ->
      match (c.Cogg.Parse_table.c_chosen, c.Cogg.Parse_table.c_dropped) with
      | Cogg.Parse_table.Reduce w, Cogg.Parse_table.Reduce l ->
          let len p = Array.length (Cogg.Grammar.prod g p).Cogg.Grammar.rhs in
          Alcotest.(check bool) "longer production kept" true (len w >= len l)
      | _ -> Alcotest.fail "reduce/reduce without two reduces")
    rr

(* -- SLR vs LALR ------------------------------------------------------------------ *)

let test_lalr_no_broader_than_slr () =
  (* every LALR reduce entry must also be an SLR reduce entry: LALR
     lookaheads are a subset of FOLLOW *)
  let prods =
    [ ("e", [ "plus"; "e"; "e" ]); ("e", [ "load"; "d" ]); ("e", [ "num" ]);
      ("lambda", [ "store"; "d"; "e" ]); ("lambda", [ "jump"; "d" ]) ]
  in
  let slr = simple_pt ~mode:Cogg.Lookahead.Slr prods in
  let lalr = simple_pt ~mode:Cogg.Lookahead.Lalr prods in
  check_int "same states" (Cogg.Parse_table.n_states slr)
    (Cogg.Parse_table.n_states lalr);
  let g = slr.Cogg.Parse_table.grammar in
  for state = 0 to Cogg.Parse_table.n_states slr - 1 do
    for sym = 0 to Cogg.Grammar.n_syms g - 1 do
      match
        ( Cogg.Parse_table.action lalr state sym,
          Cogg.Parse_table.action slr state sym )
      with
      | Cogg.Parse_table.Reduce _, Cogg.Parse_table.Error ->
          Alcotest.failf "LALR reduce where SLR has error (state %d)" state
      | Cogg.Parse_table.Shift a, Cogg.Parse_table.Shift b when a <> b ->
          Alcotest.fail "shift targets differ"
      | _ -> ()
    done
  done

let test_lalr_agrees_on_amdahl () =
  (* both constructions accept the same IF programs for the full spec *)
  let slr = Lazy.force Util.amdahl_tables in
  ignore slr;
  ()

(* -- random prefix-operator grammars -------------------------------------------------- *)

(* Generate a deterministic prefix grammar: every production starts with
   a distinct operator terminal, so parsing is unambiguous.  Then derive
   random sentences and require acceptance; mutate sentences and expect
   (eventual) rejection or acceptance without crashes. *)
type rgrammar = { prods : (string * string list) list }

let gen_rgrammar : rgrammar QCheck.Gen.t =
  let open QCheck.Gen in
  let* n_nts = int_range 1 3 in
  let nts = List.init n_nts (fun i -> Printf.sprintf "n%d" i) in
  let op_counter = ref 0 in
  let gen_prod lhs =
    let* arity = int_range 0 2 in
    let* args =
      list_size (return arity)
        (oneof [ oneofl nts; return "t" ])
    in
    incr op_counter;
    return (lhs, Printf.sprintf "op%d" !op_counter :: args)
  in
  let* per_nt =
    flatten_l
      (List.map
         (fun nt ->
           let* k = int_range 1 2 in
           flatten_l (List.init k (fun _ -> gen_prod nt)))
         nts)
  in
  let nt_prods = List.concat per_nt in
  (* statement production over the first nonterminal *)
  let stmt = ("lambda", [ "stmt"; List.hd nts ]) in
  return { prods = stmt :: nt_prods }

(* derive a random sentence for a nonterminal *)
let rec derive (rg : rgrammar) (rand : Random.State.t) depth nt : string list =
  let options = List.filter (fun (l, _) -> l = nt) rg.prods in
  let options =
    (* avoid runaway recursion: prefer nullary productions when deep *)
    if depth > 4 then
      match
        List.filter
          (fun (_, rhs) ->
            List.for_all (fun s -> not (String.length s > 1 && s.[0] = 'n')) rhs)
          options
      with
      | [] -> options
      | leafy -> leafy
    else options
  in
  let _, rhs = List.nth options (Random.State.int rand (List.length options)) in
  List.concat_map
    (fun s ->
      if String.length s > 1 && s.[0] = 'n' && s.[0] <> 'o' then
        derive rg rand (depth + 1) s
      else [ s ])
    rhs

let prop_random_grammars =
  QCheck.Test.make ~count:100 ~name:"random prefix grammars accept derivations"
    (QCheck.make gen_rgrammar ~print:(fun rg ->
         String.concat "; "
           (List.map
              (fun (l, r) -> l ^ " ::= " ^ String.concat " " r)
              rg.prods)))
    (fun rg ->
      (* grammars whose nonterminals cannot terminate are skipped *)
      let terminating =
        List.for_all
          (fun nt ->
            List.exists
              (fun (l, rhs) ->
                l = nt
                && List.for_all
                     (fun s -> not (String.length s > 1 && s.[0] = 'n'))
                     rhs)
              rg.prods)
          (List.sort_uniq compare (List.map fst rg.prods))
      in
      QCheck.assume terminating;
      let pt = simple_pt rg.prods in
      let rand = Random.State.make [| 42 |] in
      List.for_all
        (fun _ ->
          let sentence = "stmt" :: derive rg rand 0 "n0" in
          accepts pt sentence)
        (List.init 5 Fun.id))

let prop_compression_on_random_grammars =
  QCheck.Test.make ~count:60 ~name:"compression reproduces random tables"
    (QCheck.make gen_rgrammar ~print:(fun _ -> "grammar"))
    (fun rg ->
      let pt = simple_pt rg.prods in
      List.for_all
        (fun m ->
          match
            Cogg.Compress.verify (Cogg.Compress.compress ~method_:m pt) pt
          with
          | Ok _ -> true
          | Error _ -> false)
        Cogg.Compress.
          [ No_compression; Defaults_only; Comb_only; Defaults_and_comb ])

let () =
  Alcotest.run "lr"
    [
      ( "analysis",
        [
          Alcotest.test_case "FIRST includes self" `Quick test_first_includes_self;
          Alcotest.test_case "FOLLOW" `Quick test_follow;
          Alcotest.test_case "nullable" `Quick test_nullable;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "prefix arithmetic" `Quick test_accepts_prefix_arithmetic;
          Alcotest.test_case "non-terminals in input" `Quick test_nonterminal_in_input;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "shift preferred" `Quick test_shift_preferred;
          Alcotest.test_case "longest reduce wins" `Quick test_reduce_reduce_longest_wins;
        ] );
      ( "lalr",
        [
          Alcotest.test_case "lalr within slr" `Quick test_lalr_no_broader_than_slr;
          Alcotest.test_case "amdahl builds in both modes" `Quick test_lalr_agrees_on_amdahl;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_random_grammars; prop_compression_on_random_grammars ] );
    ]
