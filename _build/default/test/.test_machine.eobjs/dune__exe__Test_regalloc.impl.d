test/test_regalloc.ml: Alcotest Cogg List
