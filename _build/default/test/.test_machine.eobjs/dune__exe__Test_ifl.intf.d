test/test_ifl.mli:
