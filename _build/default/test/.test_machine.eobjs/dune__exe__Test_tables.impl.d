test/test_tables.ml: Alcotest Array Bytes Cogg Fmt Lazy List Pipeline Printf String Util
