test/test_cogg.ml: Alcotest Bytes Cogg Fmt Ifl List Machine
