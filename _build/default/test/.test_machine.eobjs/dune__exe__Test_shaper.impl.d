test/test_shaper.ml: Alcotest Ifl List Machine Pascal Shaper String
