test/test_ifl.ml: Alcotest Ifl List QCheck QCheck_alcotest String
