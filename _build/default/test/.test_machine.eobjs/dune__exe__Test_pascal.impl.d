test/test_pascal.ml: Alcotest Int32 List Pascal Pipeline
