test/test_pipeline.ml: Alcotest Bytes Cogg Fun Ifl Lazy List Machine Pipeline Printf QCheck QCheck_alcotest String Util
