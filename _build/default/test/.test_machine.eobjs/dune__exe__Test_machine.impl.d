test/test_machine.ml: Alcotest Bytes Encode Insn Int32 List Machine Objmod QCheck QCheck_alcotest Runtime Sim
