test/test_baseline.ml: Alcotest Baseline Bytes Char Cogg Lazy List Machine Pascal Pipeline Printf Util
