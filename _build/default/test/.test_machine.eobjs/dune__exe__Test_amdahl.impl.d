test/test_amdahl.ml: Alcotest Cogg Fmt Ifl Lazy List Machine Pipeline Printf String Util
