test/test_lr.mli:
