test/test_amdahl.mli:
