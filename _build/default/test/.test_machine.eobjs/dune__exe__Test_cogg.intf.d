test/test_cogg.mli:
