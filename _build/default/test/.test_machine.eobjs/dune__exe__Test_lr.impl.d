test/test_lr.ml: Alcotest Array Cogg Fun Lazy List Option Printf QCheck QCheck_alcotest Random String Util
