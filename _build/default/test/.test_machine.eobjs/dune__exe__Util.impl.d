test/util.ml: Alcotest Cogg Filename Fmt Lazy List Machine String Sys
