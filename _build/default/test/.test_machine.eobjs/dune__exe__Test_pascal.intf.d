test/test_pascal.mli:
