(* Tests of the full Amdahl 470 specification: every machine idiom the
   paper discusses, verified by executing the generated code on the
   simulator. *)

let check_int = Alcotest.(check int)

let tables () = Lazy.force Util.amdahl_tables

(* IF fragments: all programs bracket their body in procedure entry/exit. *)
let prog body = "procedure_entry " ^ body ^ " procedure_exit"

(* slot displacements as strings, for splicing into IF text *)
let d n = string_of_int (Util.local n)

let run ?strategy ?locals ?floats body =
  Util.compile_and_run ?strategy ?locals ?floats (tables ()) (prog body)

(* -- straight-line arithmetic ---------------------------------------------- *)

let test_add_commutative () =
  (* x0 := x0 + x1: expect exactly l/a/st through the commutative memory
     template (paper section 4.1's example) *)
  let r =
    run
      ~locals:[ (0, 7); (1, 35) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13"
         (d 0) (d 0) (d 1))
  in
  check_int "sum" 42 (Util.read_local r 0);
  (* entry (2) + l + a + st + exit (3) = 8 instructions *)
  check_int "instruction count" 8
    (List.length
       (String.split_on_char '\n'
          (String.trim r.Util.genresult.Cogg.Codegen.listing)))

let test_mult_pair_idiom () =
  (* x0 := x1 * x2 through the even/odd pair and push_odd *)
  let r =
    run
      ~locals:[ (1, 17); (2, -3) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 imult fullword dsp:%s r:13 fullword dsp:%s r:13"
         (d 0) (d 1) (d 2))
  in
  check_int "product" (-51) (Util.read_local r 0)

let test_div_quotient_odd () =
  let r =
    run
      ~locals:[ (1, -100); (2, 7) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 idiv fullword dsp:%s r:13 fullword dsp:%s r:13"
         (d 0) (d 1) (d 2))
  in
  check_int "quotient truncates toward zero" (-14) (Util.read_local r 0)

let test_mod_remainder_even () =
  let r =
    run
      ~locals:[ (1, -100); (2, 7) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 imod fullword dsp:%s r:13 fullword dsp:%s r:13"
         (d 0) (d 1) (d 2))
  in
  check_int "remainder" (-2) (Util.read_local r 0)

let test_nested_expression () =
  (* x0 := ((x1*x2) + (x3 div x4)) mod x5 *)
  let r =
    run
      ~locals:[ (1, 6); (2, 7); (3, 100); (4, 9); (5, 31) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 imod iadd imult fullword dsp:%s r:13 \
          fullword dsp:%s r:13 idiv fullword dsp:%s r:13 fullword dsp:%s \
          r:13 fullword dsp:%s r:13"
         (d 0) (d 1) (d 2) (d 3) (d 4) (d 5))
  in
  check_int "((6*7)+(100/9)) mod 31" (((6 * 7) + (100 / 9)) mod 31)
    (Util.read_local r 0)

let test_sub_and_unaries () =
  (* x0 := abs(x1 - x2); x3 := -x4; x5 := max(x6, x7) *)
  let r =
    run
      ~locals:[ (1, 10); (2, 25); (4, 9); (6, 4); (7, 11) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 iabs isub fullword dsp:%s r:13 fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 ineg fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 imax fullword dsp:%s r:13 fullword dsp:%s r:13"
         (d 0) (d 1) (d 2) (d 3) (d 4) (d 5) (d 6) (d 7))
  in
  check_int "abs" 15 (Util.read_local r 0);
  check_int "neg" (-9) (Util.read_local r 3);
  check_int "max" 11 (Util.read_local r 5)

let test_min_and_odd () =
  let r =
    run
      ~locals:[ (1, 4); (2, 11); (3, 7) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 imin fullword dsp:%s r:13 fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 iodd fullword dsp:%s r:13"
         (d 0) (d 1) (d 2) (d 4) (d 3))
  in
  check_int "min" 4 (Util.read_local r 0);
  check_int "odd(7)" 1 (Util.read_local r 4)

let test_incr_decr_idioms () =
  (* x0 := x1 - 1 (bctr idiom); x2 := x3 + 1 (la idiom) *)
  let r =
    run
      ~locals:[ (1, 50); (3, 99) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 decr fullword dsp:%s r:13 \
          assign fullword dsp:%s r:13 incr fullword dsp:%s r:13"
         (d 0) (d 1) (d 2) (d 3))
  in
  check_int "decrement" 49 (Util.read_local r 0);
  check_int "increment" 100 (Util.read_local r 2);
  (* the decrement must have used the bctr idiom *)
  Alcotest.(check bool)
    "bctr idiom used" true
    (String.length r.Util.genresult.Cogg.Codegen.listing > 0
    && Util.contains r.Util.genresult.Cogg.Codegen.listing "bctr")

let test_shifts_and_constants () =
  (* x0 := (x1 shl 2) + 4095; x2 := x3 shr 3; x4 := -17 *)
  let r =
    run
      ~locals:[ (1, 5); (3, -64) ]
      (Printf.sprintf
         "assign fullword dsp:%s r:13 iadd l_shift fullword dsp:%s r:13 v:2 v:4095 \
          assign fullword dsp:%s r:13 r_shift fullword dsp:%s r:13 v:3 \
          assign fullword dsp:%s r:13 neg_constant v:17"
         (d 0) (d 1) (d 2) (d 3) (d 4))
  in
  check_int "shift-add" ((5 lsl 2) + 4095) (Util.read_local r 0);
  check_int "arithmetic right shift" (-8) (Util.read_local r 2);
  check_int "negative constant" (-17) (Util.read_local r 4)

let test_halfword_values () =
  let lay = Machine.Runtime.default_layout in
  let t = tables () in
  match
    Cogg.Codegen.generate_string t
      (prog
         (Printf.sprintf
            "assign hlfword dsp:%s r:13 iadd hlfword dsp:%s r:13 hlfword dsp:%s r:13"
            (d 0) (d 1) (d 2)))
  with
  | Error m -> Alcotest.fail m
  | Ok g -> (
      match Machine.Runtime.boot ~layout:lay g.Cogg.Codegen.objmod with
      | Error m -> Alcotest.fail m
      | Ok (sim, entry) -> (
          let frame = Machine.Runtime.main_frame lay in
          Machine.Sim.store_h sim (frame + Util.local 1) (-300);
          Machine.Sim.store_h sim (frame + Util.local 2) 512;
          match Machine.Runtime.run ~layout:lay sim ~entry with
          | Error m -> Alcotest.fail m
          | Ok _ ->
              check_int "halfword sum" 212
                (Machine.Sim.load_h sim (frame + Util.local 0))))

(* -- control flow ----------------------------------------------------------- *)

(* if x1 < x2 then x0 := 1 else x0 := 2
   branch-if-not-less (mask 11) to L1; x0:=1; goto L2; L1: x0:=2; L2: *)
let if_less_prog =
  Printf.sprintf
    "branch_op lbl:1 cond:m11 icompare fullword dsp:%s r:13 fullword dsp:%s r:13 \
     assign fullword dsp:%s r:13 pos_constant v:1 \
     branch_op lbl:2 \
     label_def lbl:1 \
     assign fullword dsp:%s r:13 pos_constant v:2 \
     label_def lbl:2"
    (d 1) (d 2) (d 0) (d 0)

let test_branch_taken () =
  let r = run ~locals:[ (1, 3); (2, 9) ] if_less_prog in
  check_int "then branch" 1 (Util.read_local r 0)

let test_branch_not_taken () =
  let r = run ~locals:[ (1, 9); (2, 3) ] if_less_prog in
  check_int "else branch" 2 (Util.read_local r 0)

let test_loop_sums () =
  (* x0 := 0; x1 := 5; L1: if x1 = 0 goto L2; x0 += x1; x1 -= 1; goto L1; L2: *)
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 pos_constant v:0 \
       label_def lbl:1 \
       branch_op lbl:2 cond:m8 icompare fullword dsp:%s r:13 pos_constant v:0 \
       assign fullword dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13 \
       assign fullword dsp:%s r:13 decr fullword dsp:%s r:13 \
       branch_op lbl:1 \
       label_def lbl:2"
      (d 0) (d 1) (d 0) (d 0) (d 1) (d 1) (d 1)
  in
  let r = run ~locals:[ (1, 5) ] body in
  check_int "1+2+3+4+5" 15 (Util.read_local r 0)

let test_case_branch_table () =
  (* computed goto: x0 := 10*selector through a branch table.
     case_index scales the selector by 4 and loads the table word. *)
  let body sel =
    Printf.sprintf
      "assign fullword dsp:%s r:13 pos_constant v:%d \
       case_index lbl:9 fullword dsp:%s r:13 \
       label_def lbl:9 \
       label_index lbl:1 \
       label_index lbl:2 \
       label_index lbl:3 \
       label_def lbl:1 \
       assign fullword dsp:%s r:13 pos_constant v:10 \
       branch_op lbl:8 \
       label_def lbl:2 \
       assign fullword dsp:%s r:13 pos_constant v:20 \
       branch_op lbl:8 \
       label_def lbl:3 \
       assign fullword dsp:%s r:13 pos_constant v:30 \
       branch_op lbl:8 \
       label_def lbl:8"
      (d 1) sel (d 1) (d 0) (d 0) (d 0)
  in
  List.iter
    (fun sel ->
      let r = run (body sel) in
      check_int (Printf.sprintf "case %d" sel) (10 * (sel + 1))
        (Util.read_local r 0))
    [ 0; 1; 2 ]

(* -- booleans --------------------------------------------------------------- *)

let test_boolean_assign_from_cc () =
  (* b0 := x1 < x2.  A relational result goes through r ::= cond cc
     (0/1 register, mask = branch-if-false), then a byte store; the
     direct assign-from-cc production is reserved for TM-style cc. *)
  let body =
    Printf.sprintf
      "assign byteword dsp:%s r:13 cond:m11 icompare fullword dsp:%s r:13 fullword dsp:%s r:13"
      (d 0) (d 1) (d 2)
  in
  let r1 = run ~locals:[ (1, 3); (2, 9) ] body in
  check_int "3 < 9 is true" 1 (Util.read_byte r1 0);
  let r2 = run ~locals:[ (1, 9); (2, 3) ] body in
  check_int "9 < 3 is false" 0 (Util.read_byte r2 0);
  (* TM-style cc may be stored directly: b0 := b1 (via boolean_test) *)
  let body2 =
    Printf.sprintf
      "assign byteword dsp:%s r:13 boolean_test byteword dsp:%s r:13"
      (d 0) (d 3)
  in
  let r3 = run ~locals:[ (3, 1 lsl 24) ] body2 in
  check_int "true boolean copied" 1 (Util.read_byte r3 0);
  let r4 = run ~locals:[ (3, 0) ] body2 in
  check_int "false boolean copied" 0 (Util.read_byte r4 0)

let test_boolean_memory_and () =
  (* b0 := b1 and b2 over byte booleans (tm/skip/tm + mvi/skip/mvi) *)
  let body =
    Printf.sprintf
      "assign byteword dsp:%s r:13 boolean_and byteword dsp:%s r:13 byteword dsp:%s r:13"
      (d 0) (d 1) (d 2)
  in
  let cases = [ (0, 0, 0); (0, 1, 0); (1, 0, 0); (1, 1, 1) ] in
  List.iter
    (fun (a, b, expect) ->
      let r = run ~locals:[ (1, a lsl 24); (2, b lsl 24) ] body in
      check_int (Printf.sprintf "%d and %d" a b) expect (Util.read_byte r 0))
    cases

let test_boolean_or_register () =
  (* b0 := (x1 < x2) or b3 : register boolean through cond+cc *)
  let body =
    Printf.sprintf
      "assign byteword dsp:%s r:13 boolean_or cond:m11 icompare fullword \
       dsp:%s r:13 fullword dsp:%s r:13 byteword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3)
  in
  let check a b flag expect =
    let r = run ~locals:[ (1, a); (2, b); (3, flag lsl 24) ] body in
    check_int
      (Printf.sprintf "(%d<%d) or %d" a b flag)
      expect (Util.read_byte r 0)
  in
  check 1 2 0 1;
  check 2 1 1 1;
  check 2 1 0 0

let test_boolean_not () =
  let body =
    Printf.sprintf
      "assign byteword dsp:%s r:13 boolean_not byteword dsp:%s r:13"
      (d 0) (d 1)
  in
  let r = run ~locals:[ (1, 1 lsl 24) ] body in
  check_int "not true" 0 (Util.read_byte r 0);
  let r = run ~locals:[ (1, 0) ] body in
  check_int "not false" 1 (Util.read_byte r 0)

(* -- sets -------------------------------------------------------------------- *)

let test_bit_set_and_test () =
  (* set bit 3 (mask 0x10) of the byte set at slot 1; then b0 := bit 3 in set *)
  let body =
    Printf.sprintf
      "set_bit_value addr dsp:%s r:13 elmnt:16 \
       assign byteword dsp:%s r:13 test_bit_value addr dsp:%s r:13 elmnt:16"
      (d 1) (d 0) (d 1)
  in
  let r = run body in
  check_int "bit present after set" 1 (Util.read_byte r 0);
  check_int "set byte" 0x10 (Util.read_byte r 1)

let test_bit_variable_element () =
  (* set bit k (variable) with the DIV8/MOD8 sequence, then test it *)
  let body =
    Printf.sprintf
      "set_bit_value addr dsp:%s r:13 fullword dsp:%s r:13 \
       assign byteword dsp:%s r:13 test_bit_value addr dsp:%s r:13 fullword dsp:%s r:13"
      (d 2) (d 1) (d 0) (d 2) (d 1)
  in
  List.iter
    (fun k ->
      let r = run ~locals:[ (1, k) ] body in
      check_int (Printf.sprintf "bit %d" k) 1 (Util.read_byte r 0))
    [ 0; 5; 9; 14 ]

let test_clear_bit () =
  (* byte set 0xFF; clear bit with mask complement 0xEF -> 0xEF *)
  let body =
    Printf.sprintf "clear_bit_value addr dsp:%s r:13 elmnt:239" (d 1)
  in
  let r = run ~locals:[ (1, 0xFFFFFFFF) ] body in
  check_int "cleared" 0xEF (Util.read_byte r 1)

let test_word_set_ops () =
  (* x0 := (x1 union x2) intersect difference(x3, x4) over word sets *)
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 set_intersect set_union fullword dsp:%s \
       r:13 fullword dsp:%s r:13 set_difference fullword dsp:%s r:13 \
       fullword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3) (d 4)
  in
  let r =
    run ~locals:[ (1, 0b1100); (2, 0b0011); (3, 0b1010); (4, 0b0010) ] body
  in
  check_int "set algebra" (0b1111 land (0b1010 land lnot 0b0010))
    (Util.read_local r 0)

(* -- checks ------------------------------------------------------------------ *)

let test_range_check_passes () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 range_check fullword dsp:%s r:13 fullword \
       dsp:%s r:13 fullword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3)
  in
  let r = run ~locals:[ (1, 5); (2, 1); (3, 10) ] body in
  Alcotest.(check (option string)) "no abort" None r.Util.outcome.Machine.Runtime.aborted;
  check_int "value through" 5 (Util.read_local r 0)

let test_range_check_aborts () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 range_check fullword dsp:%s r:13 fullword \
       dsp:%s r:13 fullword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3)
  in
  let r = run ~locals:[ (1, 50); (2, 1); (3, 10) ] body in
  Alcotest.(check (option string))
    "aborted" (Some "range overflow") r.Util.outcome.Machine.Runtime.aborted

let test_uninit_check () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 uninit_check fullword dsp:%s r:13" (d 0)
      (d 1)
  in
  let ok = run ~locals:[ (1, 42) ] body in
  Alcotest.(check (option string)) "initialized" None ok.Util.outcome.Machine.Runtime.aborted;
  let bad = run ~locals:[ (1, Machine.Runtime.uninit_pattern) ] body in
  Alcotest.(check bool)
    "uninitialized detected" true
    (bad.Util.outcome.Machine.Runtime.aborted <> None)

(* -- reals -------------------------------------------------------------------- *)

let test_real_arithmetic () =
  (* r0 := (r1 + r2) * r3 with double reals *)
  let body =
    Printf.sprintf
      "assign dblrealword dsp:%s r:13 rmult radd dblrealword dsp:%s r:13 \
       dblrealword dsp:%s r:13 dblrealword dsp:%s r:13"
      (d 0) (d 2) (d 4) (d 6)
  in
  let r = run ~floats:[ (2, 1.5); (4, 2.25); (6, 4.0) ] body in
  Alcotest.(check (float 1e-9))
    "(1.5+2.25)*4" 15.0
    (Machine.Sim.load_f64 r.Util.sim (r.Util.frame + Util.local 0))

let test_int_real_conversion () =
  (* r0 := real(x1); x2 := trunc(r0 / 2.0) ... use halve *)
  let body =
    Printf.sprintf
      "assign dblrealword dsp:%s r:13 halve s_x_cnvrt fullword dsp:%s r:13 \
       assign fullword dsp:%s r:13 x_s_cnvrt dblrealword dsp:%s r:13"
      (d 0) (d 2) (d 3) (d 0)
  in
  let r = run ~locals:[ (2, -25) ] ~floats:[] body in
  Alcotest.(check (float 1e-9))
    "int->real then halve" (-12.5)
    (Machine.Sim.load_f64 r.Util.sim (r.Util.frame + Util.local 0));
  check_int "real->int truncation" (-12) (Util.read_local r 3)

(* -- CSE ---------------------------------------------------------------------- *)

let test_cse_register_reuse () =
  (* x0 := (x1+x2) * (x1+x2) via make_common/use_common; the second use
     must come from the register, not recompute *)
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 imult make_common cse:c1 cnt:1 fullword \
       dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13 use_common cse:c1"
      (d 0) (d 9) (d 1) (d 2)
  in
  let r = run ~locals:[ (1, 6); (2, 7) ] body in
  check_int "(6+7)^2" 169 (Util.read_local r 0);
  (* exactly one 'a ' or 'ar' addition in the listing: the sum was reused *)
  let listing = r.Util.genresult.Cogg.Codegen.listing in
  let count_adds =
    String.split_on_char '\n' listing
    |> List.filter (fun l ->
           let l = String.trim l in
           String.length l > 2
           && (String.sub l 0 2 = "a " || String.sub l 0 3 = "ar "))
    |> List.length
  in
  check_int "addition computed once" 1 count_adds

(* -- block moves --------------------------------------------------------------- *)

let test_mvc_block_assign () =
  (* copy 8 bytes from slot 2 to slot 0 via addresses *)
  let body =
    Printf.sprintf
      "assign addr dsp:%s r:13 addr dsp:%s r:13 lng:8" (d 0) (d 2)
  in
  let r = run ~locals:[ (2, 0x01020304); (3, 0x05060708) ] body in
  check_int "first word copied" 0x01020304 (Util.read_local r 0);
  check_int "second word copied" 0x05060708 (Util.read_local r 1)

let test_mvcl_long_assign () =
  let body =
    Printf.sprintf
      "long_assign addr dsp:%s r:13 addr dsp:%s r:13 lng:8" (d 0) (d 2)
  in
  let r = run ~locals:[ (2, 123456); (3, -99) ] body in
  check_int "mvcl word 1" 123456 (Util.read_local r 0);
  check_int "mvcl word 2" (-99) (Util.read_local r 1)

(* -- span-dependent branches ----------------------------------------------------- *)

let test_long_branch_over_page () =
  (* more than 4096 bytes of statements between a forward branch and its
     target: the loader generator must use the long form *)
  let filler =
    (* each statement is l+a+st = 12 bytes; 400 statements = 4800 bytes *)
    List.init 400 (fun _ ->
        Printf.sprintf
          "assign fullword dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13"
          (d 4) (d 4) (d 5))
    |> String.concat " "
  in
  let body =
    Printf.sprintf
      "branch_op lbl:1 %s label_def lbl:1 assign fullword dsp:%s r:13 pos_constant v:77"
      filler (d 0)
  in
  let r = run ~locals:[ (4, 0); (5, 1) ] body in
  check_int "branch skipped the filler" 0 (Util.read_local r 4);
  check_int "target reached" 77 (Util.read_local r 0);
  Alcotest.(check bool)
    "a long branch was generated" true
    (r.Util.genresult.Cogg.Codegen.resolved.Cogg.Loader_gen.n_long > 0)

let test_short_branch_stays_short () =
  let r = run ~locals:[ (1, 1); (2, 2) ] if_less_prog in
  check_int "no long branches" 0
    r.Util.genresult.Cogg.Codegen.resolved.Cogg.Loader_gen.n_long

(* -- register pressure and need-transfers ------------------------------------------ *)

let test_deep_expression_register_use () =
  (* a deeply nested sum forcing many live registers *)
  let rec nest n =
    if n = 0 then Printf.sprintf "fullword dsp:%s r:13" (d 1)
    else Printf.sprintf "iadd %s fullword dsp:%s r:13" (nest (n - 1)) (d 1)
  in
  (* iadd with a memory right operand folds, so force register-register by
     nesting on both sides *)
  let rec tree depth =
    if depth = 0 then Printf.sprintf "fullword dsp:%s r:13" (d 1)
    else Printf.sprintf "iadd %s %s" (tree (depth - 1)) (tree (depth - 1))
  in
  ignore nest;
  let body =
    Printf.sprintf "assign fullword dsp:%s r:13 %s" (d 0) (tree 3)
  in
  let r = run ~locals:[ (1, 1) ] body in
  check_int "2^3 ones" 8 (Util.read_local r 0)

let test_statement_records () =
  let body =
    Printf.sprintf
      "statement stmt:1 assign fullword dsp:%s r:13 pos_constant v:5 statement stmt:2"
      (d 0)
  in
  let r = run body in
  check_int "value" 5 (Util.read_local r 0);
  ignore r

let test_abort_op () =
  let r = run "abort_op errno:9" in
  Alcotest.(check bool)
    "aborted with code" true
    (match r.Util.outcome.Machine.Runtime.aborted with
    | Some m -> m = "program abort (code 9)"
    | None -> false)

(* -- allocation strategies all produce correct code -------------------------------- *)

let test_strategies_agree () =
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 imod iadd imult fullword dsp:%s r:13 \
       fullword dsp:%s r:13 idiv fullword dsp:%s r:13 fullword dsp:%s r:13 \
       fullword dsp:%s r:13"
      (d 0) (d 1) (d 2) (d 3) (d 4) (d 5)
  in
  let expect = ((6 * 7) + (100 / 9)) mod 31 in
  List.iter
    (fun strategy ->
      let r =
        run ~strategy
          ~locals:[ (1, 6); (2, 7); (3, 100); (4, 9); (5, 31) ]
          body
      in
      check_int
        (Cogg.Regalloc.strategy_name strategy)
        expect (Util.read_local r 0))
    Cogg.Regalloc.[ Lru; Round_robin; First_free ]

(* -- quadruple precision (128-bit) reals --------------------------------------- *)

let test_quad_arithmetic () =
  (* q0 := (q2 + q4) * q6 via the extended load/store and axr/mxr *)
  let body =
    Printf.sprintf
      "assign quadrealword dsp:%s r:13 qmult qadd quadrealword dsp:%s r:13        quadrealword dsp:%s r:13 quadrealword dsp:%s r:13"
      (d 0) (d 4) (d 8) (d 12)
  in
  (* quads live in two doublewords; the simulator computes with the high
     half (the documented IEEE substitution), the low half is 0 *)
  let r = run ~floats:[ (4, 2.5); (8, 0.75); (12, 4.0) ] body in
  Alcotest.(check (float 1e-9))
    "(2.5+0.75)*4" 13.0
    (Machine.Sim.load_f64 r.Util.sim (r.Util.frame + Util.local 0))

let test_quad_conversions () =
  (* widen a double to quad and truncate back *)
  let body =
    Printf.sprintf
      "assign quadrealword dsp:%s r:13 x_q_cnvrt dblrealword dsp:%s r:13        assign dblrealword dsp:%s r:13 q_x_cnvrt quadrealword dsp:%s r:13"
      (d 0) (d 4) (d 6) (d 0)
  in
  let r = run ~floats:[ (4, 9.25) ] body in
  Alcotest.(check (float 1e-9))
    "survives the round trip" 9.25
    (Machine.Sim.load_f64 r.Util.sim (r.Util.frame + Util.local 6))

(* -- halfword division (supplementary redundancy) -------------------------------- *)

let test_halfword_divide () =
  let lay = Machine.Runtime.default_layout in
  let t = tables () in
  match
    Cogg.Codegen.generate_string t
      (prog
         (Printf.sprintf
            "assign fullword dsp:%s r:13 idiv fullword dsp:%s r:13 hlfword dsp:%s r:13              assign fullword dsp:%s r:13 imod fullword dsp:%s r:13 hlfword dsp:%s r:13"
            (d 0) (d 1) (d 2) (d 3) (d 1) (d 2)))
  with
  | Error m -> Alcotest.fail m
  | Ok g -> (
      (* the halfword divisor must go through LH, not L *)
      Alcotest.(check bool) "lh used" true (Util.contains g.Cogg.Codegen.listing "lh");
      match Machine.Runtime.boot ~layout:lay g.Cogg.Codegen.objmod with
      | Error m -> Alcotest.fail m
      | Ok (sim, entry) -> (
          let frame = Machine.Runtime.main_frame lay in
          Machine.Sim.store_w sim (frame + Util.local 1) (-200);
          Machine.Sim.store_h sim (frame + Util.local 2) 7;
          match Machine.Runtime.run ~layout:lay sim ~entry with
          | Error m -> Alcotest.fail m
          | Ok _ ->
              check_int "quotient" (-28)
                (Machine.Sim.load_w sim (frame + Util.local 0));
              check_int "remainder" (-4)
                (Machine.Sim.load_w sim (frame + Util.local 3))))

(* -- need with a busy register: transfer and stack rebind ------------------------ *)

let test_need_transfer_in_code () =
  (* procedure_call needs r14/r15.  With the first-free strategy the
     deep expression below occupies low registers; to provoke a transfer
     we need a value in r14/r15, which the allocator never hands out, so
     instead verify the paper's mechanism directly through x_s_cnvrt,
     which needs f0 while f0 can hold a live real. *)
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 iadd x_s_cnvrt dblrealword dsp:%s r:13        x_s_cnvrt radd dblrealword dsp:%s r:13 dblrealword dsp:%s r:13"
      (d 0) (d 2) (d 4) (d 6)
  in
  (* with first-free, the first conversion's operand loads into f0; the
     second conversion's 'need f.0' must transfer it *)
  let r =
    run ~strategy:Cogg.Regalloc.First_free
      ~floats:[ (2, 5.0); (4, 2.0); (6, 3.0) ]
      body
  in
  check_int "trunc(5.0) + trunc(2.0+3.0)" 10 (Util.read_local r 0)

(* -- CSE eviction under register pressure ---------------------------------------- *)

let test_cse_evicted_and_reloaded () =
  (* define a CSE, exhaust every register with a deep register-only
     expression, then use the CSE: it must reload from its temporary *)
  let rec deep n =
    if n = 0 then Printf.sprintf "fullword dsp:%s r:13" (d 1)
    else Printf.sprintf "iadd %s %s" (deep (n - 1)) (deep (n - 1))
  in
  let body =
    Printf.sprintf
      "assign fullword dsp:%s r:13 iadd make_common cse:c1 cnt:1 fullword        dsp:%s r:13 iadd fullword dsp:%s r:13 fullword dsp:%s r:13 iadd %s        use_common cse:c1"
      (d 0) (d 20) (d 2) (d 3) (deep 3)
  in
  let r = run ~locals:[ (1, 1); (2, 40); (3, 2) ] body in
  (* (40+2) + (8*1 + (40+2)) *)
  check_int "cse survives pressure" (42 + 8 + 42) (Util.read_local r 0)

(* -- LALR tables drive the full corpus -------------------------------------------- *)

let test_lalr_corpus () =
  match
    Cogg.Cogg_build.build_file ~mode:Cogg.Lookahead.Lalr
      (Util.spec_path "amdahl470.cgg")
  with
  | Error es ->
      Alcotest.failf "%a" (Fmt.list Cogg.Cogg_build.pp_error) es
  | Ok lalr ->
      List.iter
        (fun (name, src) ->
          match Pipeline.verify lalr src with
          | Ok v ->
              Alcotest.(check bool) (name ^ " under LALR") true v.Pipeline.agreed
          | Error m -> Alcotest.failf "%s: %s" name m)
        Pipeline.Programs.all

(* -- statement records -------------------------------------------------------------- *)

let test_stmt_records_collected () =
  let t = tables () in
  let emitter = Cogg.Emit.create t in
  let toks =
    match
      Ifl.Reader.program_of_string
        (prog
           (Printf.sprintf
              "statement stmt:10 assign fullword dsp:%s r:13 pos_constant v:1                statement stmt:20 assign fullword dsp:%s r:13 pos_constant v:2"
              (d 0) (d 1)))
    with
    | Ok ts -> ts
    | Error m -> Alcotest.fail m
  in
  (match Cogg.Driver.parse t ~reduce:(Cogg.Emit.reduce emitter) toks with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%a" Cogg.Driver.pp_error e);
  let nums = List.map fst emitter.Cogg.Emit.stmt_records in
  Alcotest.(check (list int)) "both statements recorded" [ 20; 10 ]
    nums

let () =
  Alcotest.run "amdahl470"
    [
      ( "arithmetic",
        [
          Alcotest.test_case "commutative add" `Quick test_add_commutative;
          Alcotest.test_case "multiply pair idiom" `Quick test_mult_pair_idiom;
          Alcotest.test_case "divide quotient odd" `Quick test_div_quotient_odd;
          Alcotest.test_case "modulo remainder even" `Quick test_mod_remainder_even;
          Alcotest.test_case "nested expression" `Quick test_nested_expression;
          Alcotest.test_case "sub and unaries" `Quick test_sub_and_unaries;
          Alcotest.test_case "min and odd" `Quick test_min_and_odd;
          Alcotest.test_case "incr/decr idioms" `Quick test_incr_decr_idioms;
          Alcotest.test_case "shifts and constants" `Quick test_shifts_and_constants;
          Alcotest.test_case "halfword values" `Quick test_halfword_values;
        ] );
      ( "control",
        [
          Alcotest.test_case "branch taken" `Quick test_branch_taken;
          Alcotest.test_case "branch not taken" `Quick test_branch_not_taken;
          Alcotest.test_case "loop" `Quick test_loop_sums;
          Alcotest.test_case "case branch table" `Quick test_case_branch_table;
        ] );
      ( "booleans",
        [
          Alcotest.test_case "assign from cc" `Quick test_boolean_assign_from_cc;
          Alcotest.test_case "memory and" `Quick test_boolean_memory_and;
          Alcotest.test_case "or with register" `Quick test_boolean_or_register;
          Alcotest.test_case "not" `Quick test_boolean_not;
        ] );
      ( "sets",
        [
          Alcotest.test_case "bit set and test" `Quick test_bit_set_and_test;
          Alcotest.test_case "variable element" `Quick test_bit_variable_element;
          Alcotest.test_case "clear bit" `Quick test_clear_bit;
          Alcotest.test_case "word set ops" `Quick test_word_set_ops;
        ] );
      ( "checks",
        [
          Alcotest.test_case "range check passes" `Quick test_range_check_passes;
          Alcotest.test_case "range check aborts" `Quick test_range_check_aborts;
          Alcotest.test_case "uninit check" `Quick test_uninit_check;
        ] );
      ( "reals",
        [
          Alcotest.test_case "real arithmetic" `Quick test_real_arithmetic;
          Alcotest.test_case "conversions" `Quick test_int_real_conversion;
        ] );
      ( "cse",
        [ Alcotest.test_case "register reuse" `Quick test_cse_register_reuse ] );
      ( "blocks",
        [
          Alcotest.test_case "mvc block assign" `Quick test_mvc_block_assign;
          Alcotest.test_case "mvcl long assign" `Quick test_mvcl_long_assign;
        ] );
      ( "spans",
        [
          Alcotest.test_case "long branch over page" `Quick test_long_branch_over_page;
          Alcotest.test_case "short branch stays short" `Quick test_short_branch_stays_short;
        ] );
      ( "misc",
        [
          Alcotest.test_case "deep expression" `Quick test_deep_expression_register_use;
          Alcotest.test_case "statement records" `Quick test_statement_records;
          Alcotest.test_case "abort op" `Quick test_abort_op;
          Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
        ] );
      ( "advanced",
        [
          Alcotest.test_case "quad arithmetic" `Quick test_quad_arithmetic;
          Alcotest.test_case "quad conversions" `Quick test_quad_conversions;
          Alcotest.test_case "halfword divide" `Quick test_halfword_divide;
          Alcotest.test_case "need transfer" `Quick test_need_transfer_in_code;
          Alcotest.test_case "cse eviction reload" `Quick test_cse_evicted_and_reloaded;
          Alcotest.test_case "lalr corpus" `Quick test_lalr_corpus;
          Alcotest.test_case "stmt records collected" `Quick test_stmt_records_collected;
        ] );
    ]
