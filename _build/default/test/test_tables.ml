(* Table statistics (Table 1), serialization sizes (Table 2) and the
   grammar-subset ablation machinery. *)

let check_int = Alcotest.(check int)

let spec () =
  match Cogg.Spec_parse.of_file (Util.spec_path "amdahl470.cgg") with
  | Ok s -> s
  | Error e -> Alcotest.failf "%a" Cogg.Spec_parse.pp_error e

let tables () = Lazy.force Util.amdahl_tables

(* -- Table 1 -------------------------------------------------------------- *)

let test_table1_consistency () =
  let s1 = Cogg.Stats.table1 (spec ()) (tables ()) in
  check_int "entries = states * xdim"
    (s1.Cogg.Stats.states * s1.Cogg.Stats.x_dimension)
    s1.Cogg.Stats.entries;
  Alcotest.(check bool)
    "significant <= entries" true
    (s1.Cogg.Stats.significant <= s1.Cogg.Stats.entries);
  Alcotest.(check bool)
    "templates >= productions" true
    (s1.Cogg.Stats.templates >= s1.Cogg.Stats.productions);
  Alcotest.(check bool)
    "same order of magnitude as the paper" true
    (s1.Cogg.Stats.states > 300
    && s1.Cogg.Stats.productions > 150
    && s1.Cogg.Stats.x_dimension > 70
    && s1.Cogg.Stats.x_dimension < 100)

let test_table1_declared_counts () =
  let s1 = Cogg.Stats.table1 (spec ()) (tables ()) in
  let t = tables () in
  let st = t.Cogg.Tables.symtab in
  check_int "declared = sum of sections"
    (List.length st.Cogg.Symtab.nonterminals
    + List.length st.Cogg.Symtab.terminals
    + List.length st.Cogg.Symtab.operators
    + List.length st.Cogg.Symtab.opcodes
    + List.length st.Cogg.Symtab.constants
    + List.length st.Cogg.Symtab.semantics)
    s1.Cogg.Stats.symbols_declared

(* -- serialization ---------------------------------------------------------- *)

let test_template_array_roundtrip () =
  let t = tables () in
  let bytes = Cogg.Tables_io.template_array_bytes t in
  let back = Cogg.Tables_io.read_template_array bytes in
  check_int "same length" (Array.length t.Cogg.Tables.compiled)
    (Array.length back);
  Array.iteri
    (fun i orig ->
      match (orig, back.(i)) with
      | None, None -> ()
      | Some a, Some b ->
          (* structural equality of the compiled production *)
          if a <> b then Alcotest.failf "production %d differs after roundtrip" i
      | _ -> Alcotest.failf "presence differs at %d" i)
    t.Cogg.Tables.compiled

let test_template_array_corrupt () =
  (match Cogg.Tables_io.read_template_array "JUNK" with
  | exception Cogg.Tables_io.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let t = tables () in
  let bytes = Cogg.Tables_io.template_array_bytes t in
  let truncated = String.sub bytes 0 (String.length bytes / 2) in
  match Cogg.Tables_io.read_template_array truncated with
  | exception Cogg.Tables_io.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated payload accepted"

let test_sizes_sane () =
  let s = Cogg.Tables_io.sizes (tables ()) in
  Alcotest.(check bool)
    "compressed < uncompressed" true
    (s.Cogg.Tables_io.compressed_table < s.Cogg.Tables_io.uncompressed_table);
  Alcotest.(check bool)
    "template array nonempty" true
    (s.Cogg.Tables_io.template_array > 1000);
  (* parse table serialization is as large as the accounting claims *)
  let c =
    Cogg.Compress.compress ~method_:Cogg.Compress.Defaults_and_comb
      (tables ()).Cogg.Tables.parse
  in
  let serialized = Cogg.Tables_io.parse_table_bytes c in
  Alcotest.(check bool)
    "serialized table within 2x of accounting" true
    (String.length serialized < 2 * c.Cogg.Compress.size_bytes)

(* -- compressed tables drive the parser identically --------------------------- *)

let test_compressed_lookup_equivalence () =
  let t = tables () in
  let pt = t.Cogg.Tables.parse in
  let c = Cogg.Compress.compress pt in
  let n_syms = Cogg.Grammar.n_syms t.Cogg.Tables.grammar in
  let softened = ref 0 in
  for state = 0 to Cogg.Parse_table.n_states pt - 1 do
    for sym = 0 to n_syms - 1 do
      let a = Cogg.Parse_table.action pt state sym in
      let b = Cogg.Compress.lookup c ~state ~sym in
      if a <> b then
        match (a, b) with
        | Cogg.Parse_table.Error, Cogg.Parse_table.Reduce _ -> incr softened
        | _ -> Alcotest.failf "lookup differs at state %d sym %d" state sym
    done
  done;
  Alcotest.(check bool) "some errors softened to default reductions" true
    (!softened > 0)

(* -- subsets -------------------------------------------------------------------- *)

let test_subsets_shrink_monotonically () =
  let sp = spec () in
  let sizes =
    List.map
      (fun lvl ->
        List.length (Cogg.Spec_subset.filter lvl sp).Cogg.Spec_ast.productions)
      Cogg.Spec_subset.all_levels
  in
  match sizes with
  | [ full; nofused; intonly; core ] ->
      Alcotest.(check bool) "monotone" true
        (full > nofused && nofused > intonly && intonly > core);
      Alcotest.(check bool) "core is small" true (core < 50)
  | _ -> Alcotest.fail "levels changed"

let test_subsets_all_build () =
  List.iter
    (fun (lvl, r) ->
      match r with
      | Ok _ -> ()
      | Error es ->
          Alcotest.failf "%s: %a"
            (Cogg.Spec_subset.level_name lvl)
            (Fmt.list Cogg.Cogg_build.pp_error) es)
    (Cogg.Spec_subset.build_levels (spec ()))

let test_subsets_generate_correct_code () =
  List.iter
    (fun (lvl, r) ->
      match r with
      | Error _ -> Alcotest.fail "build failed"
      | Ok t -> (
          match Pipeline.verify ~cse:false t Pipeline.Programs.gcd with
          | Ok v ->
              Alcotest.(check bool)
                (Cogg.Spec_subset.level_name lvl ^ " correct")
                true v.Pipeline.agreed
          | Error m -> Alcotest.failf "%s: %s" (Cogg.Spec_subset.level_name lvl) m))
    (Cogg.Spec_subset.build_levels (spec ()))

let test_full_beats_core_on_code_size () =
  let sp = spec () in
  let build lvl =
    match Cogg.Cogg_build.build (Cogg.Spec_subset.filter lvl sp) with
    | Ok t -> t
    | Error _ -> Alcotest.fail "build failed"
  in
  let code_bytes t =
    match Pipeline.compile ~cse:false t Pipeline.Programs.appendix1_equation with
    | Ok c ->
        Bytes.length c.Pipeline.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.code
    | Error m -> Alcotest.fail m
  in
  let full = code_bytes (build Cogg.Spec_subset.Full) in
  let nofused = code_bytes (build Cogg.Spec_subset.No_fused) in
  Alcotest.(check bool)
    (Printf.sprintf "redundant grammar gives better code (%d < %d)" full nofused)
    true (full < nofused)

(* -- full bundle roundtrip -------------------------------------------------- *)

let test_bundle_roundtrip_drives_codegen () =
  let t = tables () in
  let bytes = Cogg.Tables_io.write t in
  let t2 = Cogg.Tables_io.read bytes in
  (* the reloaded bundle must generate byte-identical code *)
  List.iter
    (fun (name, src) ->
      match (Pipeline.compile t src, Pipeline.compile t2 src) with
      | Ok a, Ok b ->
          Alcotest.(check string)
            (name ^ " identical listings")
            a.Pipeline.gen.Cogg.Codegen.listing
            b.Pipeline.gen.Cogg.Codegen.listing
      | Error m, _ | _, Error m -> Alcotest.failf "%s: %s" name m)
    [ ("gcd", Pipeline.Programs.gcd);
      ("appendix1", Pipeline.Programs.appendix1_equation);
      ("classify", Pipeline.Programs.classify) ]

let test_bundle_rejects_garbage () =
  (match Cogg.Tables_io.read "NOPE" with
  | exception Cogg.Tables_io.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let t = tables () in
  let bytes = Cogg.Tables_io.write t in
  let truncated = String.sub bytes 0 (String.length bytes * 2 / 3) in
  match Cogg.Tables_io.read truncated with
  | exception Cogg.Tables_io.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated bundle accepted"

let () =
  Alcotest.run "tables"
    [
      ( "table1",
        [
          Alcotest.test_case "consistency" `Quick test_table1_consistency;
          Alcotest.test_case "declared counts" `Quick test_table1_declared_counts;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "template roundtrip" `Quick test_template_array_roundtrip;
          Alcotest.test_case "corrupt input" `Quick test_template_array_corrupt;
          Alcotest.test_case "sizes sane" `Quick test_sizes_sane;
        ] );
      ( "compression",
        [ Alcotest.test_case "lookup equivalence" `Quick test_compressed_lookup_equivalence ] );
      ( "bundle",
        [
          Alcotest.test_case "roundtrip drives codegen" `Quick test_bundle_roundtrip_drives_codegen;
          Alcotest.test_case "rejects garbage" `Quick test_bundle_rejects_garbage;
        ] );
      ( "subsets",
        [
          Alcotest.test_case "shrink monotonically" `Quick test_subsets_shrink_monotonically;
          Alcotest.test_case "all build" `Quick test_subsets_all_build;
          Alcotest.test_case "correct code" `Quick test_subsets_generate_correct_code;
          Alcotest.test_case "full beats core" `Quick test_full_beats_core_on_code_size;
        ] );
    ]
