(* Unit and property tests for the IBM 370 substrate: instruction
   encoding/decoding, the simulator's semantics, and the object-module
   format. *)

open Machine

let check_int = Alcotest.(check int)

(* -- helpers -------------------------------------------------------------- *)

(* Assemble a sequence, run it from address [at] until halt (branch to 0),
   return the simulator. *)
let run_insns ?(setup = fun _ -> ()) (insns : Insn.t list) : Sim.t =
  let code = Encode.encode_all insns in
  let sim = Sim.create ~mem_size:(1 lsl 18) () in
  Bytes.blit code 0 sim.Sim.mem 0x1000 (Bytes.length code);
  setup sim;
  (* r14 = 0 so "bcr 15,14" halts *)
  Sim.set_reg sim 14 0;
  ignore (Sim.run sim ~entry:0x1000);
  sim

let halt : Insn.t = Rr { op = "bcr"; r1 = 15; r2 = 14 }

(* -- encode/decode -------------------------------------------------------- *)

let sample_insns : Insn.t list =
  [
    Rr { op = "lr"; r1 = 1; r2 = 2 };
    Rr { op = "ar"; r1 = 15; r2 = 0 };
    Rx { op = "l"; r1 = 3; d2 = 132; x2 = 0; b2 = 12 };
    Rx { op = "st"; r1 = 7; d2 = 4095; x2 = 5; b2 = 13 };
    Rx { op = "bc"; r1 = 8; d2 = 100; x2 = 0; b2 = 12 };
    Rs { op = "sla"; r1 = 1; r3 = 0; d2 = 2; b2 = 0 };
    Rs { op = "stm"; r1 = 14; r3 = 13; d2 = 8; b2 = 13 };
    Si { op = "mvi"; d1 = 100; b1 = 13; i2 = 255 };
    Si { op = "tm"; d1 = 0; b1 = 1; i2 = 0x80 };
    Ss { op = "mvc"; l = 4; d1 = 144; b1 = 13; d2 = 168; b2 = 13 };
  ]

let test_roundtrip () =
  List.iter
    (fun i ->
      let b = Encode.encode i in
      let i', sz = Encode.decode b 0 in
      check_int "size" (Bytes.length b) sz;
      Alcotest.(check string)
        "roundtrip" (Insn.to_string i) (Insn.to_string i'))
    sample_insns

let test_sizes () =
  check_int "rr" 2 (Insn.size (List.nth sample_insns 0));
  check_int "rx" 4 (Insn.size (List.nth sample_insns 2));
  check_int "ss" 6 (Insn.size (List.nth sample_insns 9))

let test_encode_all_decode_all () =
  let buf = Encode.encode_all sample_insns in
  let back = Encode.decode_all buf ~pos:0 ~len:(Bytes.length buf) in
  check_int "count" (List.length sample_insns) (List.length back);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "insn" (Insn.to_string a) (Insn.to_string b))
    sample_insns back

let test_bad_encodings () =
  (match Encode.encode (Rx { op = "l"; r1 = 1; d2 = 4096; x2 = 0; b2 = 0 }) with
  | exception Encode.Encode_error _ -> ()
  | _ -> Alcotest.fail "oversized displacement accepted");
  match Encode.encode (Rr { op = "l"; r1 = 1; r2 = 2 }) with
  | exception Encode.Encode_error _ -> ()
  | _ -> Alcotest.fail "format mismatch not detected"

(* Property: random well-formed instructions survive encode/decode. *)
let gen_insn =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let disp = int_bound 4095 in
  let pick fmt =
    let mnems =
      List.filter_map
        (fun (m, (_, f)) -> if f = fmt then Some m else None)
        Insn.opcode_table
    in
    oneofl mnems
  in
  oneof
    [
      (let* op = pick Insn.RR and* r1 = reg and* r2 = reg in
       return (Insn.Rr { op; r1; r2 }));
      (let* op = pick Insn.RX and* r1 = reg and* d2 = disp
       and* x2 = reg and* b2 = reg in
       return (Insn.Rx { op; r1; d2; x2; b2 }));
      (let* op = pick Insn.RS and* r1 = reg and* r3 = reg and* d2 = disp
       and* b2 = reg in
       return (Insn.Rs { op; r1; r3; d2; b2 }));
      (let* op = pick Insn.SI and* d1 = disp and* b1 = reg
       and* i2 = int_bound 255 in
       return (Insn.Si { op; d1; b1; i2 }));
      (let* op = pick Insn.SS and* l = int_range 1 256 and* d1 = disp
       and* b1 = reg and* d2 = disp and* b2 = reg in
       return (Insn.Ss { op; l; d1; b1; d2; b2 }));
    ]

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode roundtrip"
    (QCheck.make gen_insn ~print:Insn.to_string)
    (fun i ->
      let b = Encode.encode i in
      let i', sz = Encode.decode b 0 in
      sz = Bytes.length b && Insn.to_string i = Insn.to_string i')

(* -- simulator semantics --------------------------------------------------- *)

let test_load_add_store () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        Sim.store_w s 0x2064 7;
        Sim.store_w s 0x2068 35)
      [
        Rx { op = "l"; r1 = 1; d2 = 0x64; x2 = 0; b2 = 13 };
        Rx { op = "a"; r1 = 1; d2 = 0x68; x2 = 0; b2 = 13 };
        Rx { op = "st"; r1 = 1; d2 = 0x6C; x2 = 0; b2 = 13 };
        halt;
      ]
  in
  check_int "sum stored" 42 (Sim.load_w sim 0x206C)

let test_halfword_and_byte () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        Sim.store_h s 0x2010 (-5);
        Sim.store_u8 s 0x2014 200)
      [
        Rx { op = "lh"; r1 = 2; d2 = 0x10; x2 = 0; b2 = 13 };
        Rr { op = "xr"; r1 = 3; r2 = 3 };
        Rx { op = "ic"; r1 = 3; d2 = 0x14; x2 = 0; b2 = 13 };
        Rr { op = "ar"; r1 = 2; r2 = 3 };
        halt;
      ]
  in
  check_int "lh sign extends; ic inserts" 195 (Sim.reg sim 2)

let test_mult_div_pair () =
  (* product in odd register; quotient odd, remainder even *)
  let sim =
    run_insns
      ~setup:(fun s -> Sim.set_reg s 5 17; Sim.set_reg s 3 17)
      [ Rr { op = "mr"; r1 = 4; r2 = 3 }; halt ]
  in
  check_int "product low (odd)" 289 (Sim.reg sim 5);
  check_int "product high (even)" 0 (Sim.reg sim 4);
  let sim2 =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 6 (-100);
        Sim.set_reg s 3 7)
      [
        Rs { op = "srda"; r1 = 6; r3 = 0; d2 = 32; b2 = 0 };
        Rr { op = "dr"; r1 = 6; r2 = 3 };
        halt;
      ]
  in
  check_int "quotient (odd)" (-14) (Sim.reg sim2 7);
  check_int "remainder (even)" (-2) (Sim.reg sim2 6)

let test_srda_sign_extension () =
  let sim =
    run_insns
      ~setup:(fun s -> Sim.set_reg s 2 (-7))
      [ Rs { op = "srda"; r1 = 2; r3 = 0; d2 = 32; b2 = 0 }; halt ]
  in
  check_int "even = sign" (-1) (Sim.reg sim 2);
  check_int "odd = value" (-7) (Sim.reg sim 3)

let test_compare_and_branch () =
  (* if r1 < r2 then r3 := 1 else r3 := 2 *)
  let prog lt =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 1 (if lt then 3 else 9);
        Sim.set_reg s 2 5;
        Sim.set_reg s 12 0x1000)
      [
        Rr { op = "cr"; r1 = 1; r2 = 2 } (* +0, size 2 *);
        Rx { op = "bc"; r1 = 4; d2 = 0x10; x2 = 0; b2 = 12 } (* +2 *);
        Rx { op = "la"; r1 = 3; d2 = 2; x2 = 0; b2 = 0 } (* +6 *);
        halt (* +10 *);
        Rr { op = "lr"; r1 = 0; r2 = 0 } (* +12 pad *);
        Rr { op = "lr"; r1 = 0; r2 = 0 } (* +14 pad *);
        Rx { op = "la"; r1 = 3; d2 = 1; x2 = 0; b2 = 0 } (* +16 = 0x10 *);
        halt;
      ]
  in
  check_int "taken" 1 (Sim.reg (prog true) 3);
  check_int "fallthrough" 2 (Sim.reg (prog false) 3)

let test_bctr_decrement () =
  let sim =
    run_insns
      ~setup:(fun s -> Sim.set_reg s 3 10)
      [ Rr { op = "bctr"; r1 = 3; r2 = 0 }; halt ]
  in
  check_int "bctr r3,r0 decrements" 9 (Sim.reg sim 3)

let test_tm_condition () =
  let run_with byte =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        Sim.store_u8 s 0x2004 byte)
      [ Si { op = "tm"; d1 = 4; b1 = 13; i2 = 1 }; halt ]
  in
  check_int "bit clear -> cc 0" 0 (run_with 0).Sim.cc;
  check_int "bit set -> cc 3" 3 (run_with 1).Sim.cc

let test_mvc () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        Sim.store_w s 0x2020 0xDEAD)
      [ Ss { op = "mvc"; l = 4; d1 = 0x30; b1 = 13; d2 = 0x20; b2 = 13 }; halt ]
  in
  check_int "copied word" 0xDEAD (Sim.load_w sim 0x2030)

let test_stm_lm_wraparound () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 13 0x2000;
        for i = 0 to 15 do
          if i <> 13 && i <> 14 then Sim.set_reg s i (100 + i)
        done)
      [
        Rs { op = "stm"; r1 = 15; r3 = 12; d2 = 8; b2 = 13 };
        (* clobber, then restore *)
        Rx { op = "la"; r1 = 5; d2 = 0; x2 = 0; b2 = 0 };
        Rs { op = "lm"; r1 = 15; r3 = 12; d2 = 8; b2 = 13 };
        halt;
      ]
  in
  check_int "r5 restored" 105 (Sim.reg sim 5);
  check_int "r15 restored" 115 (Sim.reg sim 15)

let test_shifts () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 1 3;
        Sim.set_reg s 2 (-64))
      [
        Rs { op = "sla"; r1 = 1; r3 = 0; d2 = 2; b2 = 0 };
        Rs { op = "sra"; r1 = 2; r3 = 0; d2 = 3; b2 = 0 };
        halt;
      ]
  in
  check_int "sla" 12 (Sim.reg sim 1);
  check_int "sra" (-8) (Sim.reg sim 2)

let test_overflow_cc () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 1 0x7FFFFFFF;
        Sim.set_reg s 2 1)
      [ Rr { op = "ar"; r1 = 1; r2 = 2 }; halt ]
  in
  check_int "overflow cc=3" 3 sim.Sim.cc

let test_mvcl () =
  let sim =
    run_insns
      ~setup:(fun s ->
        Sim.set_reg s 2 0x3000 (* dst *);
        Sim.set_reg s 3 8 (* dst len *);
        Sim.set_reg s 4 0x2000 (* src *);
        Sim.set_reg s 5 8 (* src len *);
        Sim.store_w s 0x2000 0x01020304;
        Sim.store_w s 0x2004 0x05060708)
      [ Rr { op = "mvcl"; r1 = 2; r2 = 4 }; halt ]
  in
  check_int "first word" 0x01020304 (Sim.load_w sim 0x3000);
  check_int "second word" 0x05060708 (Sim.load_w sim 0x3004)

(* Property: ar matches 32-bit signed addition *)
let prop_add =
  QCheck.Test.make ~count:300 ~name:"ar = 32-bit signed add"
    QCheck.(pair int32 int32)
    (fun (a, b) ->
      let sim =
        run_insns
          ~setup:(fun s ->
            Sim.set_reg s 1 (Int32.to_int a);
            Sim.set_reg s 2 (Int32.to_int b))
          [ Rr { op = "ar"; r1 = 1; r2 = 2 }; halt ]
      in
      Sim.reg sim 1 = Int32.to_int (Int32.add a b))

let prop_mr_dr =
  QCheck.Test.make ~count:300 ~name:"mr/dr = 64-bit multiply & divide"
    QCheck.(pair (int_range (-100000) 100000) (int_range 1 10000))
    (fun (a, b) ->
      let sim =
        run_insns
          ~setup:(fun s ->
            Sim.set_reg s 5 a;
            Sim.set_reg s 3 b)
          [
            Rr { op = "mr"; r1 = 4; r2 = 3 } (* r4:r5 = a*b *);
            Rr { op = "dr"; r1 = 4; r2 = 3 } (* r5 = a*b/b = a *);
            halt;
          ]
      in
      Sim.reg sim 5 = a && Sim.reg sim 4 = 0)

(* -- object modules -------------------------------------------------------- *)

let test_objmod_roundtrip () =
  let code = Encode.encode_all sample_insns in
  let m = Objmod.of_code ~name:"TEST" ~entry:0 code in
  let text = Objmod.to_string m in
  match Objmod.of_string text with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      check_int "text bytes" (Bytes.length code) (Objmod.text_bytes m');
      Alcotest.(check (option string)) "name" (Some "TEST") (Objmod.module_name m');
      let mem = Bytes.make 0x1000 '\000' in
      (match Objmod.load mem ~at:0x100 m' with
      | Error e -> Alcotest.fail e
      | Ok entry ->
          check_int "entry relocated" 0x100 entry;
          Alcotest.(check string)
            "payload intact"
            (Bytes.to_string code)
            (Bytes.sub_string mem 0x100 (Bytes.length code)))

let test_objmod_bad_records () =
  (match Objmod.of_string "TXT 0000 02 GG" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad hex accepted");
  match Objmod.of_string "FOO bar" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown record accepted"

(* -- runtime / PSA --------------------------------------------------------- *)

let test_runtime_entry_exit () =
  (* a main program that builds a frame, stores 99 in a local, and exits *)
  let lay = Runtime.default_layout in
  let insns : Insn.t list =
    [
      Rs { op = "stm"; r1 = 14; r3 = 13; d2 = Runtime.save_area; b2 = 13 };
      Rx { op = "bal"; r1 = 14; d2 = Runtime.psa_entry_code; x2 = 0; b2 = Runtime.pr_base };
      Rx { op = "la"; r1 = 1; d2 = 99; x2 = 0; b2 = 0 };
      Rx { op = "st"; r1 = 1; d2 = Runtime.locals_base; x2 = 0; b2 = 13 };
      (* exit: reload old frame, restore registers, return *)
      Rx { op = "l"; r1 = 13; d2 = Runtime.old_base; x2 = 0; b2 = 13 };
      Rs { op = "lm"; r1 = 14; r3 = 13; d2 = Runtime.save_area; b2 = 13 };
      Rr { op = "bcr"; r1 = 15; r2 = 14 };
    ]
  in
  let m = Objmod.of_code ~entry:0 (Encode.encode_all insns) in
  match Runtime.boot ~layout:lay m with
  | Error e -> Alcotest.fail e
  | Ok (sim, entry) -> (
      match Runtime.run ~layout:lay sim ~entry with
      | Error e -> Alcotest.fail e
      | Ok out ->
          Alcotest.(check (option string)) "no abort" None out.aborted;
          check_int "local written in frame" 99
            (Sim.load_w sim (out.final_frame + Runtime.locals_base)))

let test_runtime_range_check_abort () =
  let lay = Runtime.default_layout in
  (* compare 5 with upper bound 3 -> overflow check must abort *)
  let insns : Insn.t list =
    [
      Rx { op = "la"; r1 = 1; d2 = 5; x2 = 0; b2 = 0 };
      Rx { op = "la"; r1 = 2; d2 = 3; x2 = 0; b2 = 0 };
      Rr { op = "cr"; r1 = 1; r2 = 2 };
      Rx { op = "bal"; r1 = 14; d2 = Runtime.psa_overflow; x2 = 0; b2 = Runtime.pr_base };
      Rr { op = "bcr"; r1 = 15; r2 = 14 };
    ]
  in
  let m = Objmod.of_code ~entry:0 (Encode.encode_all insns) in
  match Runtime.boot ~layout:lay m with
  | Error e -> Alcotest.fail e
  | Ok (sim, entry) -> (
      match Runtime.run ~layout:lay sim ~entry with
      | Error e -> Alcotest.fail e
      | Ok out ->
          Alcotest.(check (option string))
            "aborted" (Some "range overflow") out.aborted)

let test_runtime_check_passes () =
  let lay = Runtime.default_layout in
  let insns : Insn.t list =
    [
      Rx { op = "la"; r1 = 1; d2 = 2; x2 = 0; b2 = 0 };
      Rx { op = "la"; r1 = 2; d2 = 3; x2 = 0; b2 = 0 };
      Rr { op = "cr"; r1 = 1; r2 = 2 };
      Rx { op = "bal"; r1 = 14; d2 = Runtime.psa_overflow; x2 = 0; b2 = Runtime.pr_base };
      (* the bal clobbered r14; reset it so the return halts *)
      Rx { op = "la"; r1 = 14; d2 = 0; x2 = 0; b2 = 0 };
      Rr { op = "bcr"; r1 = 15; r2 = 14 };
    ]
  in
  let m = Objmod.of_code ~entry:0 (Encode.encode_all insns) in
  match Runtime.boot ~layout:lay m with
  | Error e -> Alcotest.fail e
  | Ok (sim, entry) -> (
      match Runtime.run ~layout:lay sim ~entry with
      | Error e -> Alcotest.fail e
      | Ok out -> Alcotest.(check (option string)) "no abort" None out.aborted)

let test_psa_constants () =
  let sim = Sim.create () in
  Runtime.install sim Runtime.default_layout;
  let psa = Runtime.default_layout.psa_addr in
  check_int "one_loc" 1 (Sim.load_w sim (psa + Runtime.psa_one_loc));
  check_int "minus_one_loc" (-1) (Sim.load_w sim (psa + Runtime.psa_minus_one_loc));
  check_int "seven" 7 (Sim.load_w sim (psa + Runtime.psa_seven));
  check_int "bitmask 0" 0x80 (Sim.load_w sim (psa + Runtime.psa_bitmasks));
  check_int "bitmask 7" 1 (Sim.load_w sim (psa + Runtime.psa_bitmasks + 28))

(* -- suite ----------------------------------------------------------------- *)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_add; prop_mr_dr ]

let () =
  Alcotest.run "machine"
    [
      ( "encode",
        [
          Alcotest.test_case "roundtrip samples" `Quick test_roundtrip;
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "encode_all/decode_all" `Quick test_encode_all_decode_all;
          Alcotest.test_case "bad encodings rejected" `Quick test_bad_encodings;
        ] );
      ( "sim",
        [
          Alcotest.test_case "load/add/store" `Quick test_load_add_store;
          Alcotest.test_case "halfword and byte" `Quick test_halfword_and_byte;
          Alcotest.test_case "multiply/divide pairs" `Quick test_mult_div_pair;
          Alcotest.test_case "srda sign extension" `Quick test_srda_sign_extension;
          Alcotest.test_case "compare and branch" `Quick test_compare_and_branch;
          Alcotest.test_case "bctr decrement idiom" `Quick test_bctr_decrement;
          Alcotest.test_case "tm condition codes" `Quick test_tm_condition;
          Alcotest.test_case "mvc" `Quick test_mvc;
          Alcotest.test_case "stm/lm wraparound" `Quick test_stm_lm_wraparound;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "add overflow cc" `Quick test_overflow_cc;
          Alcotest.test_case "mvcl" `Quick test_mvcl;
        ] );
      ( "objmod",
        [
          Alcotest.test_case "roundtrip" `Quick test_objmod_roundtrip;
          Alcotest.test_case "bad records" `Quick test_objmod_bad_records;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "entry/exit frames" `Quick test_runtime_entry_exit;
          Alcotest.test_case "range check aborts" `Quick test_runtime_range_check_abort;
          Alcotest.test_case "range check passes" `Quick test_runtime_check_passes;
          Alcotest.test_case "psa constants" `Quick test_psa_constants;
        ] );
      ("properties", qsuite);
    ]
