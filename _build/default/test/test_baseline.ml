(* The hand-written comparison code generator: it must produce correct
   code for the same workloads (verified against the interpreter), and
   its output is what the Appendix-1 style comparison measures the
   table-driven generator against. *)

let tables () = Lazy.force Util.amdahl_tables

let run_baseline name src =
  match Pipeline.compile_baseline src with
  | Error m -> Alcotest.failf "%s: baseline compile: %s" name m
  | Ok c -> (
      match Pipeline.execute_baseline c with
      | Error m -> Alcotest.failf "%s: baseline exec: %s" name m
      | Ok x ->
          (match x.Pipeline.outcome.Machine.Runtime.aborted with
          | Some m -> Alcotest.failf "%s: baseline aborted: %s" name m
          | None -> ());
          (c, x))

let test_all_programs_execute () =
  List.iter
    (fun (name, src) ->
      let c, x = run_baseline name src in
      ignore c;
      (* compare the written output against the reference interpreter *)
      match Pascal.Sema.front_end src with
      | Error m -> Alcotest.fail m
      | Ok checked -> (
          match Pascal.Interp.run checked with
          | Error e -> Alcotest.failf "%a" Pascal.Interp.pp_error e
          | Ok r ->
              let ints =
                List.filter_map
                  (function
                    | Pascal.Interp.Vint n -> Some n
                    | Pascal.Interp.Vbool b -> Some (if b then 1 else 0)
                    | Pascal.Interp.Vchar c -> Some (Char.code c)
                    | _ -> None)
                  r.Pascal.Interp.written
              in
              Alcotest.(check (list int))
                (name ^ " int output") ints x.Pipeline.written_ints))
    Pipeline.Programs.all

let test_baseline_vs_cogg_agree () =
  (* both generators must compute identical results on every workload *)
  let t = tables () in
  List.iter
    (fun (name, src) ->
      let _, bx = run_baseline name src in
      match Pipeline.compile t src with
      | Error m -> Alcotest.fail m
      | Ok c -> (
          match Pipeline.execute c with
          | Error m -> Alcotest.fail m
          | Ok x ->
              Alcotest.(check (list int))
                (name ^ " outputs agree") bx.Pipeline.written_ints
                x.Pipeline.written_ints))
    Pipeline.Programs.all

let count_insns (r : Baseline.result_t) =
  Machine.Encode.decode_all r.Baseline.resolved.Cogg.Loader_gen.code
    ~pos:r.Baseline.resolved.Cogg.Loader_gen.entry
    ~len:
      (Bytes.length r.Baseline.resolved.Cogg.Loader_gen.code
      - r.Baseline.resolved.Cogg.Loader_gen.entry)
  |> List.length

let test_code_quality_comparable () =
  (* the paper's claim: the table-driven generator produces code "as good
     as" the hand-crafted one.  Check the two stay within 2x of each
     other on the equation benchmark, in code bytes. *)
  let t = tables () in
  let src = Pipeline.Programs.appendix1_equation in
  match (Pipeline.compile t src, Pipeline.compile_baseline src) with
  | Ok c, Ok b ->
      let cogg_bytes =
        Bytes.length c.Pipeline.gen.Cogg.Codegen.resolved.Cogg.Loader_gen.code
      in
      let base_bytes = Bytes.length b.Pipeline.b_gen.Baseline.resolved.Cogg.Loader_gen.code in
      ignore (count_insns b.Pipeline.b_gen);
      Alcotest.(check bool)
        (Printf.sprintf "sizes comparable (cogg %d vs baseline %d)" cogg_bytes
           base_bytes)
        true
        (cogg_bytes * 2 >= base_bytes && base_bytes * 2 >= cogg_bytes)
  | Error m, _ | _, Error m -> Alcotest.fail m

let () =
  Alcotest.run "baseline"
    [
      ( "correctness",
        [
          Alcotest.test_case "all programs execute" `Quick test_all_programs_execute;
          Alcotest.test_case "baseline = cogg outputs" `Quick test_baseline_vs_cogg_agree;
        ] );
      ( "comparison",
        [ Alcotest.test_case "code quality comparable" `Quick test_code_quality_comparable ] );
    ]
